//! Lock-light metrics primitives and the registry that names them.
//!
//! The MSU's disk and network processes run on a real-time duty cycle,
//! so instrumentation must never block: every update here is a relaxed
//! atomic operation on a handle the caller obtained once at startup.
//! The only mutex in the module guards the name→metric map, touched at
//! registration and snapshot time.

use calliope_check::sync::atomic::{AtomicU64, Ordering};
use calliope_types::wire::stats::{HistBucket, MetricEntry, MetricValue, StatsSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Bucket bounds (microseconds) for latency-style histograms: packet
/// lateness, disk service time, queue wait. 50 µs resolution at the
/// bottom, stretching to one second; an implicit overflow bucket
/// catches the rest.
pub const LATENCY_US_BUCKETS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        // relaxed: a statistic — atomicity (no lost increments) is all
        // that is needed; nothing is published through the counter.
        // Model-checked in tests/model.rs.
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // relaxed: see `inc`.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // relaxed: snapshot readers tolerate slightly stale values.
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter. Not linearizable against concurrent `inc`s;
    /// meant for benchmark warmup boundaries, not steady-state use.
    pub fn reset(&self) {
        // relaxed: see the doc comment — benchmark boundaries only.
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous level that also remembers its high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    /// Sets the current level, raising the high-water mark if exceeded.
    #[inline]
    pub fn set(&self, v: u64) {
        // relaxed: last-writer-wins level; readers tolerate staleness.
        self.value.store(v, Ordering::Relaxed);
        // relaxed: fetch_max is atomic, so the mark is monotone even
        // when setters race. Model-checked in tests/model.rs.
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Raises only the high-water mark (for externally tracked levels).
    #[inline]
    pub fn observe_peak(&self, v: u64) {
        // relaxed: see `set`.
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        // relaxed: snapshot readers tolerate slightly stale values.
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set.
    pub fn high_water(&self) -> u64 {
        // relaxed: snapshot readers tolerate slightly stale values.
        self.high_water.load(Ordering::Relaxed)
    }

    /// Zeroes the level and the high-water mark (benchmark warmup).
    pub fn reset(&self) {
        // relaxed: benchmark warmup boundaries only, like Counter.
        self.value.store(0, Ordering::Relaxed);
        // relaxed: see above.
        self.high_water.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram of `u64` samples.
///
/// Bounds are chosen at registration; recording is a short linear scan
/// (bounds lists are small) plus two relaxed `fetch_add`s. Values above
/// the last bound land in an implicit overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One per bound, plus the overflow bucket at the end.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        // relaxed: statistics — atomicity per cell is enough; bucket and
        // sum are not read as a consistent pair.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // relaxed: see above.
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        // relaxed: snapshot readers tolerate slightly stale values.
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Zeroes every bucket and the sum (benchmark warmup).
    pub fn reset(&self) {
        for b in &self.buckets {
            // relaxed: benchmark warmup boundaries only.
            b.store(0, Ordering::Relaxed);
        }
        // relaxed: see above.
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) of the recorded samples
    /// by linear interpolation within the containing bucket. `None`
    /// when the histogram is empty. See [`histogram_quantile`] for the
    /// estimation rules.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        histogram_quantile(&self.snapshot_value(), q)
    }

    /// Renders the cumulative wire form.
    pub fn snapshot_value(&self) -> MetricValue {
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            // relaxed: snapshot readers tolerate slightly stale values.
            cum += b.load(Ordering::Relaxed);
            out.push(HistBucket {
                le: self.bounds.get(i).copied().unwrap_or(u64::MAX),
                count: cum,
            });
        }
        MetricValue::Histogram {
            buckets: out,
            count: cum,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Estimates the `q`-quantile (`0.0..=1.0`) of a wire-form histogram by
/// linear interpolation within the containing bucket, in the style of
/// Prometheus's `histogram_quantile`:
///
/// * the target rank is `q × count`, found in the first bucket whose
///   cumulative count reaches it;
/// * the estimate interpolates linearly between the bucket's lower and
///   upper bounds according to where the rank falls inside it;
/// * ranks landing in the overflow bucket clamp to its lower bound —
///   there is no upper bound to interpolate toward.
///
/// Returns `None` for empty histograms and non-histogram values.
pub fn histogram_quantile(value: &MetricValue, q: f64) -> Option<f64> {
    let MetricValue::Histogram { buckets, count, .. } = value else {
        return None;
    };
    if *count == 0 || buckets.is_empty() {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * *count as f64).max(f64::MIN_POSITIVE);
    let mut lower = 0u64;
    let mut prev_cum = 0u64;
    for b in buckets {
        if (b.count as f64) >= rank {
            if b.le == u64::MAX {
                // Overflow bucket: clamp to its lower bound.
                return Some(lower as f64);
            }
            let in_bucket = (b.count - prev_cum) as f64;
            let frac = if in_bucket > 0.0 {
                (rank - prev_cum as f64) / in_bucket
            } else {
                1.0
            };
            return Some(lower as f64 + (b.le - lower) as f64 * frac);
        }
        lower = b.le;
        prev_cum = b.count;
    }
    Some(lower as f64)
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn snapshot_value(&self) -> MetricValue {
        match self {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge {
                value: g.get(),
                high_water: g.high_water(),
            },
            Metric::Histogram(h) => h.snapshot_value(),
        }
    }
}

/// A named collection of metrics belonging to one component.
///
/// `counter`/`gauge`/`histogram` are get-or-create: asking twice for
/// the same name returns the same underlying metric, so independent
/// subsystems can share a series. Asking for an existing name with a
/// different kind panics — that is a programming error, not a runtime
/// condition.
pub struct Registry {
    /// Uptime epoch. Behind a mutex so [`Registry::reset_epoch`] can
    /// restart the clock; touched only at snapshot/reset time.
    started: Mutex<Instant>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry; uptime counts from now.
    pub fn new() -> Registry {
        Registry {
            started: Mutex::new(Instant::now()),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Restarts the uptime clock. Callers that reset their counters
    /// must also reset the epoch, or rates derived from
    /// `snapshot().uptime_us` (counter ÷ uptime) silently mix
    /// since-reset counts with since-construction time.
    pub fn reset_epoch(&self) {
        *self.started.lock().unwrap() = Instant::now();
    }

    /// Gets or creates a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Gets or creates a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Gets or creates a histogram with the given bucket bounds (bounds
    /// are fixed by whoever registers first).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Microseconds since construction or the last
    /// [`Registry::reset_epoch`], for snapshot stamping.
    pub fn uptime_us(&self) -> u64 {
        self.started.lock().unwrap().elapsed().as_micros() as u64
    }

    /// Flattens every metric into the wire snapshot form, sorted by
    /// name.
    pub fn snapshot(&self, source: &str) -> StatsSnapshot {
        let metrics = {
            let m = self.metrics.lock().unwrap();
            m.iter()
                .map(|(name, metric)| MetricEntry {
                    name: name.clone(),
                    value: metric.snapshot_value(),
                })
                .collect()
        };
        StatsSnapshot {
            source: source.to_owned(),
            uptime_us: self.uptime_us(),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn concurrent_counter_increments_are_all_counted() {
        let reg = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = reg.counter("hits");
                thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("hits").get(), threads * per_thread);
        let snap = reg.snapshot("test");
        assert_eq!(snap.counter("hits"), threads * per_thread);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[10, 100, 1000]);
        // A value exactly equal to a bound belongs to that bound.
        h.record(10);
        h.record(11);
        h.record(100);
        h.record(1000);
        h.record(1001); // overflow
        h.record(0);
        let MetricValue::Histogram {
            buckets,
            count,
            sum,
        } = h.snapshot_value()
        else {
            panic!("expected histogram")
        };
        assert_eq!(count, 6);
        assert_eq!(sum, 10 + 11 + 100 + 1000 + 1001);
        // Cumulative: le=10 holds {0,10}; le=100 adds {11,100}; le=1000
        // adds {1000}; overflow adds {1001}.
        assert_eq!(buckets[0], HistBucket { le: 10, count: 2 });
        assert_eq!(buckets[1], HistBucket { le: 100, count: 4 });
        assert_eq!(buckets[2], HistBucket { le: 1000, count: 5 });
        assert_eq!(
            buckets[3],
            HistBucket {
                le: u64::MAX,
                count: 6
            }
        );
    }

    #[test]
    fn concurrent_histogram_records_preserve_count() {
        let reg = Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = reg.histogram("svc", LATENCY_US_BUCKETS);
                thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 997 + i % 2_000_000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let h = reg.histogram("svc", LATENCY_US_BUCKETS);
        assert_eq!(h.count(), 20_000);
        let snap = reg.snapshot("test").get("svc").cloned().unwrap();
        let MetricValue::Histogram { buckets, count, .. } = snap else {
            panic!("expected histogram")
        };
        assert_eq!(count, 20_000);
        assert_eq!(buckets.last().unwrap().count, 20_000);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(3);
        g.set(17);
        g.set(5);
        assert_eq!(g.get(), 5);
        assert_eq!(g.high_water(), 17);
        g.observe_peak(40);
        assert_eq!(g.get(), 5);
        assert_eq!(g.high_water(), 40);
    }

    #[test]
    fn snapshot_is_sorted_and_same_name_shares_metric() {
        let reg = Registry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").add(2);
        reg.counter("a.first").inc();
        let snap = reg.snapshot("sorted");
        let names: Vec<_> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(snap.counter("a.first"), 3);
        assert_eq!(snap.source, "sorted");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[100, 200, 400]);
        // 10 samples uniformly in (100, 200]: the bucket holds ranks
        // 1..=10, so p50 lands at rank 5 → 50% through the bucket.
        for _ in 0..10 {
            h.record(150);
        }
        let p50 = h.quantile(0.50).unwrap();
        assert!((p50 - 150.0).abs() < 1e-9, "p50 = {p50}");
        // p100 interpolates to the bucket's upper bound.
        assert!((h.quantile(1.0).unwrap() - 200.0).abs() < 1e-9);
        // p0 (well, rank→0+) degenerates to the bucket's lower bound.
        assert!((h.quantile(0.0).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_spanning_buckets_and_overflow() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[100, 200]);
        h.record(50); // le=100
        h.record(150); // le=200
        h.record(10_000); // overflow
                          // rank(0.5) = 1.5 → 2nd bucket, halfway between ranks 1 and 2:
                          // 50% through (100, 200].
        assert!((h.quantile(0.5).unwrap() - 150.0).abs() < 1e-9);
        // The overflow bucket clamps to its lower bound.
        assert!((h.quantile(0.99).unwrap() - 200.0).abs() < 1e-9);
        // Empty histograms have no quantiles.
        assert_eq!(reg.histogram("empty", &[10]).quantile(0.5), None);
    }

    #[test]
    fn histogram_quantile_ignores_non_histograms() {
        assert_eq!(histogram_quantile(&MetricValue::Counter(5), 0.5), None);
    }

    #[test]
    fn reset_epoch_restarts_the_uptime_clock() {
        let reg = Registry::new();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let before = reg.uptime_us();
        assert!(before >= 20_000);
        reg.reset_epoch();
        let after = reg.uptime_us();
        assert!(after < before, "uptime restarted: {after} < {before}");
    }
}
