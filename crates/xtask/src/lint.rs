//! Static lint passes over the workspace sources.
//!
//! Three rules, all serving the concurrency-correctness story that the
//! `calliope-check` model checker anchors:
//!
//! 1. **unsafe-allowlist** — `unsafe` code may appear only in the files
//!    named in [`UNSAFE_ALLOWLIST`], and every `unsafe` site (anywhere)
//!    must carry a `// SAFETY:` comment on the same line or in the
//!    comment block immediately above it.
//! 2. **relaxed-justified** — every `Ordering::Relaxed` site must be
//!    justified by a `// relaxed:` comment on the same line or within
//!    the [`RELAXED_WINDOW`] lines above it (one comment may cover a
//!    cluster of adjacent sites).
//! 3. **lock-across-io** — in `disk.rs` and `net.rs`, no mutex guard
//!    may be live across a blocking transfer (`read_blocks_into`,
//!    `read_blocks_abs`, or a socket `send_to`): holding the stream
//!    control lock through a disk read or packet send is exactly the
//!    kind of stall the duty-cycle scheduler exists to avoid.
//!
//! These are line-oriented heuristics, not a parser: they are cheap,
//! dependency-free, and tuned to this codebase's idioms. They scan
//! `crates/*/src/**/*.rs` only (integration tests under `tests/` are
//! free to be deliberately racy — that is what the model checker's
//! litmus suites are).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files allowed to contain `unsafe` code. The checker's shims must
/// touch raw memory to model it, the SPSC ring's `MaybeUninit`
/// slots are the one lock-free kernel in the data path, and the
/// flight recorder's `SIGUSR1` hook needs one libc `signal(2)` call;
/// everything else stays safe Rust.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/check/src/",
    "crates/msu/src/spsc.rs",
    "crates/obs/src/signal.rs",
];

/// How many lines above an `Ordering::Relaxed` site a `// relaxed:`
/// justification may sit (so one comment can cover a cluster).
const RELAXED_WINDOW: usize = 20;

/// Calls that must not run under a held lock guard in `disk.rs` /
/// `net.rs`.
const BLOCKING_CALLS: &[&str] = &["read_blocks_into(", "read_blocks_abs(", ".send_to("];

#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Entry point for `cargo xtask lint`.
pub fn run() -> ExitCode {
    let root = repo_root();
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut dirs = vec![crates];
    while let Some(dir) = dirs.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                // Only descend into crate roots and their src/ trees.
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                let in_src = path.components().any(|c| c.as_os_str() == "src");
                if in_src || name == "src" || path.parent() == Some(root.join("crates").as_path()) {
                    dirs.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs")
                && path.components().any(|c| c.as_os_str() == "src")
                // The linter's own sources hold rule names and seeded
                // test fixtures that would trip every rule.
                && !path.starts_with(root.join("crates/xtask"))
            {
                files.push(path);
            }
        }
    }
    files.sort();
    let mut violations = Vec::new();
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lint_file(&rel, &src));
    }
    if violations.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf()
}

/// Runs every rule that applies to `rel` (a repo-relative path using
/// `/` separators) over `src`.
pub fn lint_file(rel: &str, src: &str) -> Vec<Violation> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = lint_unsafe(rel, &lines);
    out.extend(lint_relaxed(rel, &lines));
    if rel.ends_with("disk.rs") || rel.ends_with("net.rs") {
        out.extend(lint_lock_across_io(rel, &lines));
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Splits a line into (code, comment) at the first `//`.
fn split_comment(line: &str) -> (&str, &str) {
    match line.find("//") {
        Some(i) => (&line[..i], &line[i..]),
        None => (line, ""),
    }
}

/// True when `code` contains `unsafe` as a standalone token (so
/// `unsafe_op_in_unsafe_fn` attributes do not match).
fn has_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(i) = code[from..].find("unsafe") {
        let start = from + i;
        let end = start + "unsafe".len();
        let before_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let after_ok =
            end == bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// True when some comment on the line itself, or in the contiguous
/// run of comment-only lines immediately above it, contains `needle`.
fn comment_above_or_inline(lines: &[&str], idx: usize, needle: &str) -> bool {
    if split_comment(lines[idx]).1.contains(needle) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") {
            if t.contains(needle) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Rule 1: `unsafe` only in allowlisted files, and always with a
/// `// SAFETY:` comment.
fn lint_unsafe(rel: &str, lines: &[&str]) -> Vec<Violation> {
    let allowed = UNSAFE_ALLOWLIST.iter().any(|p| rel.contains(p));
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let (code, _) = split_comment(line);
        if !has_unsafe_token(code) {
            continue;
        }
        if !allowed {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "unsafe-allowlist",
                msg: format!(
                    "unsafe code outside the allowlist ({}); keep unsafe confined \
                     or extend UNSAFE_ALLOWLIST in crates/xtask/src/lint.rs",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
        }
        if !comment_above_or_inline(lines, idx, "SAFETY:") {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "unsafe-safety-comment",
                msg: "unsafe site without a `// SAFETY:` comment on the same line or \
                      immediately above"
                    .to_string(),
            });
        }
    }
    out
}

/// Rule 2: every `Ordering::Relaxed` justified by a nearby
/// `// relaxed:` comment.
fn lint_relaxed(rel: &str, lines: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let (code, comment) = split_comment(line);
        if !code.contains("Ordering::Relaxed") {
            continue;
        }
        let justified = comment.contains("relaxed:")
            || lines[idx.saturating_sub(RELAXED_WINDOW)..idx]
                .iter()
                .any(|l| split_comment(l).1.contains("relaxed:"));
        if !justified {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "relaxed-justified",
                msg: format!(
                    "Ordering::Relaxed without a `// relaxed:` justification on the \
                     same line or within the {RELAXED_WINDOW} lines above"
                ),
            });
        }
    }
    out
}

/// Rule 3: no lock guard live across a blocking disk read or socket
/// send. Tracks `let <name> = ….lock()` bindings by brace depth;
/// method-chained temporaries (`x.lock().field = …`) release at the
/// end of the statement and are not tracked.
fn lint_lock_across_io(rel: &str, lines: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut guards: Vec<(String, usize, usize)> = Vec::new(); // (name, depth, line)
    let mut depth = 0usize;
    for (idx, line) in lines.iter().enumerate() {
        let (code, _) = split_comment(line);
        let trimmed = code.trim_start();
        // A guard *binding*: `let [mut] name = ….lock()…;` — but not a
        // chained temporary like `….lock().field` which dies at the
        // end of its own statement.
        if let Some(rest) = trimmed.strip_prefix("let ") {
            if code.contains(".lock()") && !code.contains(".lock().") {
                let rest = rest.trim_start_matches("mut ").trim_start();
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && name != "_" {
                    guards.push((name, depth, idx + 1));
                }
            }
        }
        if code.contains("drop(") {
            guards.retain(|(name, _, _)| !code.contains(&format!("drop({name})")));
        }
        for call in BLOCKING_CALLS {
            if code.contains(call) {
                for (name, _, gline) in &guards {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "lock-across-io",
                        msg: format!(
                            "blocking call `{}` while guard `{name}` (taken at line \
                             {gline}) is live; drop the guard before transferring",
                            call.trim_start_matches('.').trim_end_matches('(')
                        ),
                    });
                }
            }
        }
        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|(_, d, _)| *d <= depth);
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller promises p is valid.\n    unsafe { *p }\n}\n";
        let v = lint_file("crates/storage/src/page.rs", src);
        assert_eq!(rules(&v), ["unsafe-allowlist"], "{v:?}");
    }

    #[test]
    fn unsafe_in_allowlist_with_safety_comment_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller promises p is valid.\n    unsafe { *p }\n}\n";
        assert!(lint_file("crates/msu/src/spsc.rs", src).is_empty());
        assert!(lint_file("crates/check/src/cell.rs", src).is_empty());
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged_even_in_allowlist() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = lint_file("crates/msu/src/spsc.rs", src);
        assert_eq!(rules(&v), ["unsafe-safety-comment"], "{v:?}");
    }

    #[test]
    fn unsafe_attribute_names_do_not_match() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n";
        assert!(lint_file("crates/storage/src/lib.rs", src).is_empty());
    }

    #[test]
    fn inline_safety_comment_counts() {
        let src =
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: p valid by contract\n}\n";
        assert!(lint_file("crates/check/src/cell.rs", src).is_empty());
    }

    #[test]
    fn relaxed_without_justification_is_flagged() {
        let src = "fn f(x: &AtomicU64) -> u64 {\n    x.load(Ordering::Relaxed)\n}\n";
        let v = lint_file("crates/msu/src/pool.rs", src);
        assert_eq!(rules(&v), ["relaxed-justified"], "{v:?}");
    }

    #[test]
    fn relaxed_with_nearby_comment_passes() {
        let src = "fn f(x: &AtomicU64) -> u64 {\n    // relaxed: monotone counter, staleness fine.\n    x.load(Ordering::Relaxed)\n}\n";
        assert!(lint_file("crates/msu/src/pool.rs", src).is_empty());
        let inline =
            "fn f(x: &AtomicU64) -> u64 {\n    x.load(Ordering::Relaxed) // relaxed: counter\n}\n";
        assert!(lint_file("crates/msu/src/pool.rs", inline).is_empty());
    }

    #[test]
    fn one_relaxed_comment_covers_a_cluster() {
        let src = "fn f(x: &AtomicU64) {\n    // relaxed: independent counters.\n    x.fetch_add(1, Ordering::Relaxed);\n    x.fetch_add(2, Ordering::Relaxed);\n    x.fetch_add(3, Ordering::Relaxed);\n}\n";
        assert!(lint_file("crates/msu/src/pool.rs", src).is_empty());
    }

    #[test]
    fn relaxed_mention_in_comment_only_is_ignored() {
        let src = "// Ordering::Relaxed is discussed here but not used.\n";
        assert!(lint_file("crates/msu/src/pool.rs", src).is_empty());
    }

    #[test]
    fn lock_across_disk_read_is_flagged() {
        let src = "fn f() {\n    let mut ctl = shared.ctl.lock();\n    fs.read_blocks_abs(0, &mut refs).unwrap();\n}\n";
        let v = lint_file("crates/msu/src/disk.rs", src);
        assert_eq!(rules(&v), ["lock-across-io"], "{v:?}");
        assert!(v[0].msg.contains("ctl"), "{v:?}");
    }

    #[test]
    fn lock_across_send_is_flagged_in_net_only() {
        let src =
            "fn f() {\n    let g = state.lock();\n    socket.send_to(buf, dest).unwrap();\n}\n";
        assert_eq!(
            rules(&lint_file("crates/msu/src/net.rs", src)),
            ["lock-across-io"]
        );
        // The rule is scoped to the transfer loops in disk.rs/net.rs.
        assert!(lint_file("crates/coord/src/rpc.rs", src).is_empty());
    }

    #[test]
    fn dropped_or_scoped_guard_is_fine() {
        let dropped = "fn f() {\n    let g = state.lock();\n    drop(g);\n    socket.send_to(buf, dest).unwrap();\n}\n";
        assert!(lint_file("crates/msu/src/net.rs", dropped).is_empty());
        let scoped = "fn f() {\n    let v = {\n        let ctl = shared.ctl.lock();\n        ctl.v\n    };\n    socket.send_to(buf, dest).unwrap();\n}\n";
        assert!(lint_file("crates/msu/src/net.rs", scoped).is_empty());
    }

    #[test]
    fn chained_lock_temporary_is_not_a_guard() {
        let src = "fn f() {\n    shared.ctl.lock().eof = true;\n    socket.send_to(buf, dest).unwrap();\n}\n";
        assert!(lint_file("crates/msu/src/net.rs", src).is_empty());
    }
}
