//! The Coordinator session.
//!
//! A thin, synchronous request/reply wrapper over the client wire
//! protocol (§2.1): list content, register ports, play, record, and —
//! with administrative rights — delete content, add types, and attach
//! trick-play files.

use crate::play::PlaySession;
use crate::port::DisplayPort;
use crate::record::RecordSession;
use calliope_types::content::{ContentEntry, ContentTypeSpec};
use calliope_types::error::{Error, Result};
use calliope_types::wire::messages::{ClientRequest, CoordReply, TrickFiles};
use calliope_types::wire::stats::StatsSnapshot;
use calliope_types::wire::{read_frame, write_frame};
use calliope_types::{MsuId, SessionId};
use std::net::{IpAddr, SocketAddr, TcpStream};
use std::time::Duration;

/// A live session with the Coordinator.
pub struct CalliopeClient {
    conn: TcpStream,
    session: SessionId,
    bind_ip: IpAddr,
}

impl CalliopeClient {
    /// Connects and opens a session. `bind_ip` is where this client's
    /// display ports will live (loopback in tests).
    pub fn connect(
        coordinator: SocketAddr,
        bind_ip: IpAddr,
        client_name: &str,
        admin: bool,
    ) -> Result<CalliopeClient> {
        let conn = TcpStream::connect(coordinator)?;
        conn.set_nodelay(true).ok();
        let mut client = CalliopeClient {
            conn,
            session: SessionId(0),
            bind_ip,
        };
        match client.request(ClientRequest::Hello {
            client_name: client_name.to_owned(),
            admin,
        })? {
            CoordReply::Welcome { session } => {
                tracing::info!("session {session} opened with coordinator at {coordinator}");
                client.session = session;
                Ok(client)
            }
            other => Err(Error::internal(format!("expected Welcome, got {other:?}"))),
        }
    }

    /// The session id assigned by the Coordinator.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Sends a request without waiting for any reply (test and
    /// fire-and-forget use; the session must not be reused afterwards
    /// unless the reply is drained).
    pub fn request_no_reply(&mut self, req: ClientRequest) -> Result<()> {
        write_frame(&mut self.conn, &req)?;
        Ok(())
    }

    /// Sends one request and reads the final reply (skipping the
    /// interim `Queued` notice — the request completes when resources
    /// free, paper §2.2).
    pub fn request(&mut self, req: ClientRequest) -> Result<CoordReply> {
        write_frame(&mut self.conn, &req)?;
        loop {
            let reply: Option<CoordReply> = read_frame(&mut self.conn)?;
            match reply {
                None => return Err(Error::SessionClosed),
                Some(CoordReply::Queued) => continue,
                Some(CoordReply::Error { code, msg }) => {
                    return Err(Error::Protocol {
                        msg: format!("coordinator error {code}: {msg}"),
                    })
                }
                Some(other) => return Ok(other),
            }
        }
    }

    /// The table of contents.
    pub fn list_content(&mut self) -> Result<Vec<ContentEntry>> {
        match self.request(ClientRequest::ListContent)? {
            CoordReply::ContentList { entries } => Ok(entries),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// The content-type table.
    pub fn list_types(&mut self) -> Result<Vec<ContentTypeSpec>> {
        match self.request(ClientRequest::ListTypes)? {
            CoordReply::TypeList { types } => Ok(types),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Creates and registers an atomic display port.
    pub fn open_port(&mut self, name: &str, type_name: &str) -> Result<DisplayPort> {
        let port = DisplayPort::open(self.bind_ip, name, type_name)?;
        match self.request(ClientRequest::RegisterPort {
            name: name.to_owned(),
            type_name: type_name.to_owned(),
            data_addr: port.data_addr(),
            ctrl_addr: port.ctrl_addr(),
        })? {
            CoordReply::Ok => Ok(port),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Registers a composite display port over already-opened component
    /// ports (paper §2.1: a Seminar port from an RTP port and a VAT
    /// port).
    pub fn register_composite(
        &mut self,
        name: &str,
        type_name: &str,
        components: &[&DisplayPort],
    ) -> Result<()> {
        match self.request(ClientRequest::RegisterCompositePort {
            name: name.to_owned(),
            type_name: type_name.to_owned(),
            components: components.iter().map(|p| p.name.clone()).collect(),
        })? {
            CoordReply::Ok => Ok(()),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Plays content to a port (atomic) or composite port, returning
    /// the stream-group handle once the MSU's control connection and
    /// `GroupReady` arrive.
    ///
    /// `ports` are the *component* ports in order (one for atomic
    /// content); the first port's control listener receives the group
    /// control connection.
    pub fn play(
        &mut self,
        content: &str,
        port_name: &str,
        ports: &[&DisplayPort],
    ) -> Result<PlaySession> {
        if ports.is_empty() {
            return Err(Error::internal("play needs at least one component port"));
        }
        match self.request(ClientRequest::Play {
            content: content.to_owned(),
            port: port_name.to_owned(),
        })? {
            CoordReply::PlayStarted { group, streams } => {
                tracing::info!(
                    "play {content:?}: {group} started with {} streams",
                    streams.len()
                );
                PlaySession::establish(group, streams, ports, Duration::from_secs(20))
            }
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Records new content from a port, returning the recording handle
    /// with the MSU's UDP sinks.
    pub fn record(
        &mut self,
        content: &str,
        port_name: &str,
        type_name: &str,
        est_secs: u32,
        ports: &[&DisplayPort],
    ) -> Result<RecordSession> {
        if ports.is_empty() {
            return Err(Error::internal("record needs at least one component port"));
        }
        match self.request(ClientRequest::Record {
            content: content.to_owned(),
            port: port_name.to_owned(),
            type_name: type_name.to_owned(),
            est_secs,
        })? {
            CoordReply::RecordStarted { group, streams } => {
                tracing::info!(
                    "record {content:?}: {group} started with {} streams",
                    streams.len()
                );
                RecordSession::establish(group, streams, ports, Duration::from_secs(20))
            }
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Deletes content (admin).
    pub fn delete(&mut self, content: &str) -> Result<()> {
        match self.request(ClientRequest::Delete {
            content: content.to_owned(),
        })? {
            CoordReply::Ok => Ok(()),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Adds a content type (admin).
    pub fn add_type(&mut self, spec: ContentTypeSpec) -> Result<()> {
        match self.request(ClientRequest::AddType { spec })? {
            CoordReply::Ok => Ok(()),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Attaches offline-filtered trick-play content to an item (admin,
    /// paper §2.3.1: "an administrative interface is used to load the
    /// fast forward and fast backward files into the server").
    pub fn attach_trick(
        &mut self,
        content: &str,
        ff_content: &str,
        fb_content: &str,
    ) -> Result<()> {
        match self.request(ClientRequest::AttachTrick {
            content: content.to_owned(),
            files: TrickFiles {
                fast_forward: ff_content.to_owned(),
                fast_backward: fb_content.to_owned(),
            },
        })? {
            CoordReply::Ok => Ok(()),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the Coordinator's resource view: per-MSU and per-disk
    /// load, plus the live stream count.
    pub fn server_status(
        &mut self,
    ) -> Result<(Vec<calliope_types::wire::messages::MsuStatus>, u32)> {
        match self.request(ClientRequest::ServerStatus)? {
            CoordReply::Status {
                msus,
                active_streams,
            } => Ok((msus, active_streams)),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches live metrics snapshots: the Coordinator's own plus one
    /// per reachable MSU, or — with `Some(id)` — just that MSU's.
    pub fn stats(&mut self, msu: Option<MsuId>) -> Result<Vec<StatsSnapshot>> {
        match self.request(ClientRequest::Stats { msu })? {
            CoordReply::Stats { snapshots } => Ok(snapshots),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the Coordinator's merged cluster view: the aggregate
    /// snapshot (`source == "cluster"`) plus the latest
    /// heartbeat-piggybacked snapshot from each live MSU. Served from
    /// the Coordinator's cache, so it never blocks on an MSU.
    pub fn cluster_stats(&mut self) -> Result<(StatsSnapshot, Vec<StatsSnapshot>)> {
        match self.request(ClientRequest::ClusterStats)? {
            CoordReply::ClusterStats { cluster, msus } => Ok((cluster, msus)),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Replicates content onto another disk (admin, paper §2.3.3):
    /// buys per-title bandwidth with disk space.
    pub fn replicate(&mut self, content: &str) -> Result<()> {
        match self.request(ClientRequest::Replicate {
            content: content.to_owned(),
        })? {
            CoordReply::Ok => Ok(()),
            other => Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
    }

    /// Ends the session politely.
    pub fn bye(mut self) -> Result<()> {
        write_frame(&mut self.conn, &ClientRequest::Bye)?;
        let _: Option<CoordReply> = read_frame(&mut self.conn)?;
        Ok(())
    }
}
