//! Shimmed thread spawn/join.
//!
//! Outside a model run (and in normal builds) these are the std
//! functions. Inside one, `spawn` registers a model thread whose every
//! shimmed operation is scheduled by the checker, and `join` blocks in
//! model time (the scheduler explores who runs while the joiner waits).

#[cfg(not(calliope_check))]
pub use std::thread::{spawn, yield_now, JoinHandle};

#[cfg(calliope_check)]
pub use checked::{spawn, yield_now, JoinHandle};

#[cfg(calliope_check)]
mod checked {
    use crate::model::{cur_ctx, Ctx, Run};
    use std::sync::Arc;

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            run: Arc<Run>,
            tid: usize,
            os: std::thread::JoinHandle<Option<T>>,
        },
    }

    /// Handle to a spawned thread (std or model, depending on where
    /// `spawn` was called).
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model { run, tid, os } => {
                    let ctx = cur_ctx().expect("model JoinHandle joined outside its run");
                    run.join_thread(ctx.tid, tid);
                    match os.join() {
                        Ok(Some(v)) => Ok(v),
                        // The model join only completes once the target
                        // finished cleanly, so a missing value means the
                        // run was torn down mid-join.
                        Ok(None) => Err(Box::new("model thread aborted")),
                        Err(e) => Err(e),
                    }
                }
            }
        }
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("JoinHandle(..)")
        }
    }

    /// Drop-in for `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match cur_ctx() {
            Some(Ctx { run, tid }) => {
                let (child, os) = run.spawn_thread(tid, f);
                JoinHandle(Inner::Model {
                    run,
                    tid: child,
                    os,
                })
            }
            None => JoinHandle(Inner::Std(std::thread::spawn(f))),
        }
    }

    /// Drop-in for `std::thread::yield_now`: a scheduling point inside
    /// a model run, the real yield outside.
    pub fn yield_now() {
        match cur_ctx() {
            Some(ctx) if !std::thread::panicking() => ctx.run.yield_op(ctx.tid),
            _ => std::thread::yield_now(),
        }
    }
}
