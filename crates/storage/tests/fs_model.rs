//! Model-based testing of the MSU file system: random operation
//! sequences run against both the real file system and a trivial
//! in-memory reference; contents, metadata, and free-space accounting
//! must agree at every step — including across simulated remounts.

use calliope_storage::block::MemDisk;
use calliope_storage::catalog::FileKind;
use calliope_storage::MsuFs;
use proptest::prelude::*;
use std::collections::HashMap;

const BS: usize = 2048;
const BLOCKS: u64 = 96;
const META: u64 = 4;

#[derive(Clone, Debug)]
enum Op {
    Create { name: u8, reserve_pages: u8 },
    Append { name: u8, fill: u8, valid: u16 },
    Finalize { name: u8 },
    Delete { name: u8 },
    Remount,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..6).prop_map(|(name, reserve_pages)| Op::Create {
            name,
            reserve_pages
        }),
        (0u8..6, any::<u8>(), 1u16..=BS as u16).prop_map(|(name, fill, valid)| Op::Append {
            name,
            fill,
            valid
        }),
        (0u8..6).prop_map(|name| Op::Finalize { name }),
        (0u8..6).prop_map(|name| Op::Delete { name }),
        Just(Op::Remount),
    ]
}

#[derive(Clone, Debug, Default)]
struct ModelFile {
    pages: Vec<(u8, u16)>, // (fill byte, valid bytes)
    reserved_pages: u64,
    finalized: bool,
    /// Pages appended since the last metadata persist point; lost on
    /// remount for unfinalized files. Any operation that rewrites the
    /// metadata region (create/finalize/delete of *any* file, or an
    /// append that grows past its reservation) persists everything.
    unpersisted_pages: usize,
}

#[derive(Clone, Debug, Default)]
struct Model {
    files: HashMap<u8, ModelFile>,
}

impl Model {
    fn used_blocks(&self) -> u64 {
        self.files
            .values()
            .map(|f| f.pages.len() as u64 + f.reserved_pages)
            .sum()
    }

    /// A metadata write-through persisted every file's block list.
    fn persist_all(&mut self) {
        for f in self.files.values_mut() {
            f.unpersisted_pages = 0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fs_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut fs = MsuFs::format_with(Box::new(MemDisk::new(BS, BLOCKS)), META).unwrap();
        let data_blocks = BLOCKS - 1 - META;
        let mut model = Model::default();

        for op in ops {
            match op {
                Op::Create { name, reserve_pages } => {
                    let fname = format!("f{name}");
                    let res = fs.create(&fname, FileKind::Raw, reserve_pages as u64 * BS as u64);
                    let fits = model.used_blocks() + reserve_pages as u64 <= data_blocks;
                    let fresh = !model.files.contains_key(&name);
                    if fresh && fits {
                        prop_assert!(res.is_ok(), "create should succeed: {res:?}");
                        model.persist_all();
                        model.files.insert(name, ModelFile {
                            reserved_pages: reserve_pages as u64,
                            ..Default::default()
                        });
                    } else {
                        prop_assert!(res.is_err(), "create should fail (fresh={fresh}, fits={fits})");
                    }
                }
                Op::Append { name, fill, valid } => {
                    let fname = format!("f{name}");
                    let page = vec![fill; BS];
                    let res = fs.append_page(&fname, &page, valid as u64);
                    let expect_ok = match model.files.get(&name) {
                        None => false,
                        Some(f) if f.finalized => false,
                        Some(f) => {
                            // Succeeds if a reservation remains or the disk
                            // can grow the file by one block.
                            f.reserved_pages > 0 || model.used_blocks() < data_blocks
                        }
                    };
                    prop_assert_eq!(res.is_ok(), expect_ok, "append {}: {:?}", name, res);
                    if expect_ok {
                        let grew = model.files.get(&name).unwrap().reserved_pages == 0;
                        let f = model.files.get_mut(&name).unwrap();
                        if f.reserved_pages > 0 {
                            f.reserved_pages -= 1;
                        }
                        f.pages.push((fill, valid));
                        f.unpersisted_pages += 1;
                        if grew {
                            // Growth rewrites the metadata region,
                            // persisting every file's state.
                            model.persist_all();
                        }
                    }
                }
                Op::Finalize { name } => {
                    let fname = format!("f{name}");
                    let res = fs.finalize(&fname, 1_000, Vec::new());
                    let expect_ok = model
                        .files
                        .get(&name)
                        .is_some_and(|f| !f.finalized);
                    prop_assert_eq!(res.is_ok(), expect_ok);
                    if expect_ok {
                        {
                            let f = model.files.get_mut(&name).unwrap();
                            f.finalized = true;
                            f.reserved_pages = 0;
                        }
                        model.persist_all();
                    }
                }
                Op::Delete { name } => {
                    let fname = format!("f{name}");
                    let res = fs.delete(&fname);
                    let existed = model.files.contains_key(&name);
                    prop_assert_eq!(res.is_ok(), existed);
                    model.files.remove(&name);
                    if existed {
                        model.persist_all();
                    }
                }
                Op::Remount => {
                    fs = MsuFs::open(fs.into_device()).unwrap();
                    // Unfinalized appends since the last persist are lost
                    // (by design: crash loss is confined to in-progress
                    // recordings); their blocks return to the reservation.
                    for f in model.files.values_mut() {
                        if !f.finalized {
                            let lost = f.unpersisted_pages;
                            f.pages.truncate(f.pages.len() - lost);
                            f.reserved_pages += lost as u64;
                            f.unpersisted_pages = 0;
                        }
                    }
                }
            }

            // Invariants after every operation.
            prop_assert_eq!(fs.file_count(), model.files.len());
            let model_len = |f: &ModelFile| f.pages.iter().map(|(_, v)| *v as u64).sum::<u64>();
            for (name, mf) in &model.files {
                let meta = fs.file(&format!("f{name}")).unwrap();
                prop_assert_eq!(meta.pages(), mf.pages.len() as u64, "pages of f{}", name);
                prop_assert_eq!(meta.len_bytes, model_len(mf), "len of f{}", name);
                prop_assert_eq!(meta.finalized, mf.finalized, "finalized of f{}", name);
            }
            prop_assert_eq!(
                fs.free_bytes(),
                (data_blocks - model.used_blocks()) * BS as u64,
                "free space accounting"
            );
        }

        // Final content check: every persisted page reads back.
        for (name, mf) in &model.files {
            let fname = format!("f{name}");
            let mut buf = vec![0u8; BS];
            for (i, (fill, _)) in mf.pages.iter().enumerate() {
                // Unpersisted pages exist in memory until remount; both
                // cases must read back correctly while mounted.
                fs.read_page(&fname, i as u64, &mut buf).unwrap();
                prop_assert!(buf.iter().all(|b| b == fill), "page {i} of {fname}");
            }
        }
    }
}
