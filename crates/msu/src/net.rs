//! The network process: paced delivery and recording receivers.
//!
//! "The network process then packetizes the buffer and sends it out
//! through the high speed interface. The network process ensures that
//! packet delivery proceeds on schedule." (paper §2.3)
//!
//! One thread paces every play stream: each wakeup (default every
//! 10 ms, the paper's FreeBSD timer granularity) it tops up its packet
//! queue from the page ring and transmits every packet whose deadline
//! has arrived. Packet lateness is therefore bounded by the timer
//! granularity plus transmission time under light load — the §2.2.1
//! jitter argument.
//!
//! Recordings run one receiver thread per stream: it owns the UDP sink
//! socket, feeds packets through the stream's protocol module (which
//! derives delivery times, §2.3.2), and pushes the records into the
//! ring the disk process drains.

use crate::metrics::MsuMetrics;
use crate::pacer::Pacer;
use crate::spsc::{Consumer, PopError, Producer, PushError};
use crate::stream::{GroupShared, PageBuf, StreamPhase, StreamShared, DEADLINE_MISS_US};
use calliope_proto::module::ProtocolModule;
use calliope_proto::record::PacketRecord;
use calliope_proto::schedule::CbrSchedule;
use calliope_storage::catalog::FileKind;
use calliope_storage::page::Geometry;
use calliope_types::wire::data::{DataHeader, PacketKind};
use calliope_types::wire::messages::PacingSpec;
use calliope_types::{MediaTime, StreamId};
use crossbeam::channel::{Receiver, Sender};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Events the network thread reports to the control plane.
#[derive(Debug)]
pub enum NetEvent {
    /// A play stream delivered its last packet and the end-of-stream
    /// marker.
    PlayFinished {
        /// Which stream.
        stream: StreamId,
    },
}

/// Commands accepted by the network thread.
pub enum NetCmd {
    /// Registers a play stream.
    AddPlay {
        /// Shared stream state.
        shared: Arc<StreamShared>,
        /// Group (pacing starts only after release).
        group: Arc<GroupShared>,
        /// Page ring from the disk thread.
        consumer: Consumer<PageBuf>,
        /// Client display-port address.
        dest: SocketAddr,
        /// Calculated (CBR) or stored (IB-tree) schedule.
        pacing: PacingSpec,
        /// Page geometry (for parsing IB-tree pages).
        geometry: Geometry,
    },
    /// Drops a play stream.
    Remove {
        /// Which stream.
        stream: StreamId,
    },
    /// Stops the thread.
    Shutdown,
}

impl std::fmt::Debug for NetCmd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            NetCmd::AddPlay { .. } => "AddPlay",
            NetCmd::Remove { .. } => "Remove",
            NetCmd::Shutdown => "Shutdown",
        };
        write!(f, "NetCmd::{name}")
    }
}

/// Where a queued packet's payload lives.
enum PktPayload {
    /// A range of a refcounted disk page — queuing it made no copy, and
    /// the page returns to its pool when the last packet referencing it
    /// is sent.
    Shared(crate::pool::PageData, std::ops::Range<usize>),
    /// An owned buffer: packets stitched across a page boundary, parsed
    /// IB-tree records, and the end-of-stream flush.
    Owned(Vec<u8>),
}

impl PktPayload {
    fn as_slice(&self) -> &[u8] {
        match self {
            PktPayload::Shared(page, r) => &page[r.clone()],
            PktPayload::Owned(v) => v,
        }
    }

    fn len(&self) -> usize {
        self.as_slice().len()
    }
}

struct QueuedPkt {
    offset: MediaTime,
    kind: PacketKind,
    payload: PktPayload,
}

struct PlayIo {
    shared: Arc<StreamShared>,
    group: Arc<GroupShared>,
    consumer: Consumer<PageBuf>,
    dest: SocketAddr,
    geometry: Geometry,
    packetizer: Option<crate::packetize::CbrPacketizer>,
    queue: VecDeque<QueuedPkt>,
    local_gen: u64,
    skip_until: MediaTime,
    wire_seq: u32,
    flushed: bool,
    finished: bool,
}

/// The network thread main loop.
///
/// `blackhole` is the chaos switch: while set, media packets are paced
/// and accounted normally but never actually transmitted — the failure
/// only the client can observe.
pub fn run(
    socket: UdpSocket,
    tick: Duration,
    rx: Receiver<NetCmd>,
    events: Sender<NetEvent>,
    metrics: Arc<MsuMetrics>,
    blackhole: Arc<AtomicBool>,
) {
    let mut plays: HashMap<StreamId, PlayIo> = HashMap::new();
    // One datagram scratch buffer for every stream: header + payload are
    // encoded into it in place, so steady-state sends never allocate.
    let mut scratch: Vec<u8> = Vec::with_capacity(65_536);
    loop {
        loop {
            match rx.try_recv() {
                Ok(NetCmd::Shutdown) => return,
                Ok(cmd) => handle_inline(cmd, &mut plays, &metrics),
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => return,
            }
        }

        let now = Instant::now();
        let mut done: Vec<StreamId> = Vec::new();
        let dropping = blackhole.load(Ordering::Acquire);
        for (id, io) in plays.iter_mut() {
            if service_play(&socket, io, now, &events, &metrics, &mut scratch, dropping) {
                done.push(*id);
            }
        }
        for id in done {
            plays.remove(&id);
        }

        // The paper's 10 ms timer: the process sleeps and re-scans. A
        // command can arrive mid-sleep; waking for it keeps VCR latency
        // low without changing the pacing granularity.
        match rx.recv_timeout(tick) {
            Ok(NetCmd::Shutdown) => return,
            Ok(cmd) => {
                // Re-queue by handling inline on the next iteration: the
                // simplest is to process it here.
                handle_inline(cmd, &mut plays, &metrics);
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_inline(cmd: NetCmd, plays: &mut HashMap<StreamId, PlayIo>, metrics: &Arc<MsuMetrics>) {
    match cmd {
        NetCmd::AddPlay {
            shared,
            group,
            consumer,
            dest,
            pacing,
            geometry,
        } => {
            let packetizer = match pacing {
                PacingSpec::Constant { rate, packet_bytes } => Some(
                    crate::packetize::CbrPacketizer::new(CbrSchedule::new(rate, packet_bytes)),
                ),
                PacingSpec::Stored => None,
            };
            tracing::debug!("play stream {} delivering to {dest}", shared.id);
            plays.insert(
                shared.id,
                PlayIo {
                    shared,
                    group,
                    consumer,
                    dest,
                    geometry,
                    packetizer,
                    queue: VecDeque::new(),
                    local_gen: 0,
                    skip_until: MediaTime::ZERO,
                    wire_seq: 0,
                    flushed: false,
                    finished: false,
                },
            );
        }
        NetCmd::Remove { stream } => {
            if let Some(io) = plays.remove(&stream) {
                metrics
                    .play_ring_depth
                    .observe_peak(io.consumer.high_water() as u64);
            }
        }
        NetCmd::Shutdown => {}
    }
}

/// Services one play stream; returns true when it should be dropped.
/// `blackhole` suppresses the actual sends (chaos injection).
#[allow(clippy::too_many_arguments)]
fn service_play(
    socket: &UdpSocket,
    io: &mut PlayIo,
    now: Instant,
    events: &Sender<NetEvent>,
    metrics: &Arc<MsuMetrics>,
    scratch: &mut Vec<u8>,
    blackhole: bool,
) -> bool {
    // Snapshot the control block.
    let (phase, gen, start_seq, skip_until_us, eof, pacer, kind): (
        StreamPhase,
        u64,
        u64,
        u64,
        bool,
        Pacer,
        FileKind,
    ) = {
        let mut ctl = io.shared.ctl.lock();
        // Pacing starts once the group is released and the stream has
        // data to send: all group members start simultaneously.
        if io.group.is_released() && !ctl.pacer.is_started() {
            ctl.pacer.start(now);
            ctl.phase = StreamPhase::Running;
        }
        (
            ctl.phase,
            ctl.gen,
            ctl.start_seq,
            ctl.skip_until_us,
            ctl.eof,
            ctl.pacer.clone(),
            ctl.file.kind,
        )
    };
    if phase == StreamPhase::Done && !io.finished {
        return true;
    }

    // Generation change (seek / trick switch): discard buffered packets.
    if io.local_gen != gen {
        io.local_gen = gen;
        io.queue.clear();
        io.skip_until = MediaTime(skip_until_us);
        io.flushed = false;
        if let Some(pk) = io.packetizer.as_mut() {
            pk.reset(start_seq);
        }
    }

    // Top up the packet queue from the page ring.
    while io.queue.len() < 512 {
        match io.consumer.pop() {
            Ok(buf) => {
                if buf.gen != gen {
                    continue; // stale page from before a seek
                }
                match kind {
                    FileKind::Raw => {
                        let pk = io.packetizer.as_mut().expect("raw files have a packetizer");
                        let start = buf.skip.min(buf.valid);
                        for (offset, pb) in pk.feed_ranges(&buf.data[start..buf.valid]) {
                            // In-page packets share the pooled page; only
                            // boundary-straddling packets own their bytes.
                            let payload = match pb {
                                crate::packetize::PacketBytes::Range(r) => PktPayload::Shared(
                                    buf.data.clone(),
                                    start + r.start..start + r.end,
                                ),
                                crate::packetize::PacketBytes::Stitched(v) => PktPayload::Owned(v),
                            };
                            io.queue.push_back(QueuedPkt {
                                offset,
                                kind: PacketKind::Media,
                                payload,
                            });
                        }
                    }
                    FileKind::IbTree => {
                        match crate::packetize::unpack_ib_page(&io.geometry, &buf.data) {
                            Ok(records) => {
                                for r in records {
                                    if r.offset >= io.skip_until {
                                        io.queue.push_back(QueuedPkt {
                                            offset: r.offset,
                                            kind: r.kind,
                                            payload: PktPayload::Owned(r.payload),
                                        });
                                    }
                                }
                            }
                            Err(_) => {
                                // A corrupt page loses its packets but must
                                // not kill the stream.
                                continue;
                            }
                        }
                    }
                }
            }
            Err(PopError::Empty) | Err(PopError::Closed) => break,
        }
    }

    // Transmit everything due.
    while let Some(front) = io.queue.front() {
        if !pacer.is_due(front.offset, now) {
            break;
        }
        let pkt = io.queue.pop_front().expect("front exists");
        let late_us = pacer
            .deadline(pkt.offset)
            .map(|d| now.saturating_duration_since(d).as_micros() as u64)
            .unwrap_or(0);
        let header = DataHeader {
            stream: io.shared.id,
            seq: io.wire_seq,
            offset: pkt.offset,
            kind: pkt.kind,
        };
        io.wire_seq = io.wire_seq.wrapping_add(1);
        header.encode_packet_into(pkt.payload.as_slice(), scratch);
        // A transient send failure drops the packet (UDP semantics); the
        // client's sequence numbers expose the loss. A blackholed send
        // is accounted as sent — the NIC doesn't know the port is dead.
        if !blackhole {
            let _ = socket.send_to(scratch, io.dest);
        }
        io.shared.stats.note_packet(pkt.payload.len(), late_us);
        metrics.packets_sent.inc();
        metrics.bytes_sent.add(pkt.payload.len() as u64);
        metrics.send_lateness_us.record(late_us);
        if late_us > DEADLINE_MISS_US {
            metrics.deadline_misses.inc();
            tracing::trace!(
                "deadline miss: stream {} packet at {} was {late_us} µs late",
                io.shared.id,
                pkt.offset
            );
        }
    }
    metrics
        .play_ring_depth
        .observe_peak(io.consumer.high_water() as u64);

    // End of stream: flush the final short packet, then the marker.
    if eof && io.queue.is_empty() && io.consumer.is_empty() && pacer.is_playing() {
        if !io.flushed {
            io.flushed = true;
            if let Some(pk) = io.packetizer.as_mut() {
                if let Some((offset, payload)) = pk.flush() {
                    io.queue.push_back(QueuedPkt {
                        offset,
                        kind: PacketKind::Media,
                        payload: PktPayload::Owned(payload),
                    });
                    return false;
                }
            }
        }
        if !io.finished {
            io.finished = true;
            let header = DataHeader {
                stream: io.shared.id,
                seq: io.wire_seq,
                offset: pacer.position(now),
                kind: PacketKind::EndOfStream,
            };
            if !blackhole {
                let _ = socket.send_to(&header.encode_packet(&[]), io.dest);
            }
            io.shared.ctl.lock().phase = StreamPhase::Done;
            let _ = events.send(NetEvent::PlayFinished {
                stream: io.shared.id,
            });
            return true;
        }
    }
    false
}

/// Spawns the receiver thread for one recording stream.
///
/// The receiver owns the UDP sink socket; each datagram is decoded,
/// passed through the protocol module (which derives the delivery
/// time), and pushed into the ring toward the disk process. The thread
/// exits on the client's end-of-stream marker or when `stop` is set;
/// dropping the producer closes the ring, which tells the disk process
/// to finalize the file.
pub fn spawn_record_receiver(
    socket: UdpSocket,
    shared: Arc<StreamShared>,
    mut module: Box<dyn ProtocolModule>,
    mut producer: Producer<PacketRecord>,
    stop: Arc<AtomicBool>,
    metrics: Arc<MsuMetrics>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("socket read timeout");
        let start = Instant::now();
        let mut buf = vec![0u8; 65_536];
        while !stop.load(Ordering::Acquire) {
            let n = match socket.recv(&mut buf) {
                Ok(n) => n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break,
            };
            let Ok((header, payload)) = DataHeader::decode_packet(&buf[..n]) else {
                continue; // not a Calliope packet; ignore
            };
            if header.stream != shared.id {
                continue;
            }
            if header.kind == PacketKind::EndOfStream {
                break;
            }
            let arrival_us = start.elapsed().as_micros() as u64;
            let record = match module.on_record(header.kind, payload, arrival_us) {
                Ok(Some(r)) => r.record,
                Ok(None) => continue,
                Err(_) => continue,
            };
            shared.stats.note_packet(record.payload.len(), 0);
            metrics.packets_recorded.inc();
            metrics.bytes_recorded.add(record.payload.len() as u64);
            let mut rec = record;
            loop {
                match producer.push(rec) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        rec = back;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(PushError::Closed(_)) => {
                        metrics
                            .record_ring_depth
                            .observe_peak(producer.high_water() as u64);
                        return;
                    }
                }
            }
        }
        metrics
            .record_ring_depth
            .observe_peak(producer.high_water() as u64);
        // Producer drops here: the disk process finalizes the file.
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsc;
    use crate::stream::{ActiveFile, StreamCtl};
    use calliope_types::time::BitRate;
    use calliope_types::{GroupId, StreamId};
    use crossbeam::channel::unbounded;
    use parking_lot::Mutex;

    fn mk_stream(id: u64, kind: FileKind, pages: u64, len: u64) -> Arc<StreamShared> {
        Arc::new(StreamShared {
            id: StreamId(id),
            group: GroupId(id),
            disk: 0,
            trace: Default::default(),
            ctl: Mutex::new(StreamCtl {
                phase: StreamPhase::Priming,
                gen: 0,
                mode: crate::trick::TrickMode::Normal,
                file: ActiveFile {
                    name: "x".into(),
                    kind,
                    pages,
                    len_bytes: len,
                    root: vec![],
                    duration_us: 0,
                },
                next_page: 0,
                pending_skip: 0,
                eof: false,
                skip_until_us: 0,
                start_seq: 0,
                pacer: Pacer::new(),
            }),
            stats: Default::default(),
        })
    }

    /// Packets captured off the wire: headers plus one shared byte
    /// arena, so collecting N packets costs one growing buffer rather
    /// than N per-packet heap copies.
    struct RecvLog {
        arena: Vec<u8>,
        entries: Vec<(DataHeader, std::ops::Range<usize>)>,
    }

    impl RecvLog {
        fn iter(&self) -> impl Iterator<Item = (&DataHeader, &[u8])> {
            self.entries
                .iter()
                .map(|(h, r)| (h, &self.arena[r.clone()]))
        }

        fn last(&self) -> Option<(&DataHeader, &[u8])> {
            self.entries
                .last()
                .map(|(h, r)| (h, &self.arena[r.clone()]))
        }

        fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }
    }

    fn recv_all(socket: &UdpSocket, until_eos: bool, timeout: Duration) -> RecvLog {
        socket
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut log = RecvLog {
            arena: Vec::new(),
            entries: Vec::new(),
        };
        let deadline = Instant::now() + timeout;
        let mut buf = vec![0u8; 65536];
        while Instant::now() < deadline {
            if let Ok(n) = socket.recv(&mut buf) {
                let (h, p) = DataHeader::decode_packet(&buf[..n]).unwrap();
                let at = log.arena.len();
                log.arena.extend_from_slice(p);
                log.entries.push((h, at..at + p.len()));
                if h.kind == PacketKind::EndOfStream && until_eos {
                    break;
                }
            }
        }
        log
    }

    #[test]
    fn plays_a_raw_stream_to_completion() {
        let send_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        let dest = client.local_addr().unwrap();
        let (tx, rx) = unbounded();
        let (etx, erx) = unbounded();
        let tick = Duration::from_millis(2);
        let net = std::thread::spawn(move || {
            run(
                send_sock,
                tick,
                rx,
                etx,
                MsuMetrics::new(),
                Arc::new(AtomicBool::new(false)),
            )
        });

        // 2.5 pages of content at a fast rate.
        let page = 4096usize;
        let len = page as u64 * 2 + 1000;
        let shared = mk_stream(7, FileKind::Raw, 3, len);
        let group = GroupShared::new(GroupId(7), 1);
        let (mut p, c) = spsc::ring(2);
        let geometry = Geometry {
            page_size: page,
            internal_size: 512,
            max_keys: 8,
        };
        tx.send(NetCmd::AddPlay {
            shared: Arc::clone(&shared),
            group: Arc::clone(&group),
            consumer: c,
            dest,
            // 8 Mbit/s, 1000-byte packets: ~5 ms per packet.
            pacing: PacingSpec::Constant {
                rate: BitRate::from_mbps(8),
                packet_bytes: 1000,
            },
            geometry,
        })
        .unwrap();

        // Feed pages like the disk thread would, then mark EOF.
        for i in 0..3u64 {
            let valid = if i == 2 { 1000 } else { page };
            let buf = PageBuf {
                gen: 0,
                index: i,
                skip: 0,
                valid,
                data: vec![i as u8 + 1; page].into(),
            };
            let mut b = buf;
            loop {
                match p.push(b) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        b = back;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(PushError::Closed(_)) => panic!("closed"),
                }
            }
        }
        group.prime(StreamId(7));
        shared.ctl.lock().eof = true;

        let pkts = recv_all(&client, true, Duration::from_secs(10));
        let eos = pkts.last().unwrap();
        assert_eq!(eos.0.kind, PacketKind::EndOfStream);
        let media: Vec<_> = pkts
            .iter()
            .filter(|(h, _)| h.kind == PacketKind::Media)
            .collect();
        let total: usize = media.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total as u64, len, "every byte delivered");
        // Sequence numbers are dense.
        for (i, (h, _)) in pkts.iter().enumerate() {
            assert_eq!(h.seq, i as u32);
        }
        // Offsets are monotone and paced (~5 ms apart at 8 Mbit/s).
        for w in media.windows(2) {
            assert!(w[1].0.offset >= w[0].0.offset);
        }
        match erx.recv_timeout(Duration::from_secs(2)).unwrap() {
            NetEvent::PlayFinished { stream } => assert_eq!(stream, StreamId(7)),
        }
        tx.send(NetCmd::Shutdown).unwrap();
        net.join().unwrap();
    }

    #[test]
    fn pacing_waits_for_group_release() {
        let send_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        let dest = client.local_addr().unwrap();
        let (tx, rx) = unbounded();
        let (etx, _erx) = unbounded();
        let net = std::thread::spawn(move || {
            run(
                send_sock,
                Duration::from_millis(2),
                rx,
                etx,
                MsuMetrics::new(),
                Arc::new(AtomicBool::new(false)),
            )
        });

        let shared = mk_stream(9, FileKind::Raw, 1, 1000);
        let group = GroupShared::new(GroupId(9), 2); // expects TWO members
        let (mut p, c) = spsc::ring(2);
        tx.send(NetCmd::AddPlay {
            shared: Arc::clone(&shared),
            group: Arc::clone(&group),
            consumer: c,
            dest,
            pacing: PacingSpec::Constant {
                rate: BitRate::from_mbps(8),
                packet_bytes: 1000,
            },
            geometry: Geometry {
                page_size: 4096,
                internal_size: 512,
                max_keys: 8,
            },
        })
        .unwrap();
        p.push(PageBuf {
            gen: 0,
            index: 0,
            skip: 0,
            valid: 1000,
            data: vec![5; 4096].into(),
        })
        .unwrap();
        group.prime(StreamId(9)); // only one of two members primed

        // Nothing may be sent while the group is unreleased.
        let pkts = recv_all(&client, false, Duration::from_millis(300));
        assert!(pkts.is_empty(), "unreleased group must stay silent");

        // Release and observe delivery.
        group.prime(StreamId(10));
        shared.ctl.lock().eof = true;
        let pkts = recv_all(&client, true, Duration::from_secs(5));
        assert!(!pkts.is_empty());
        tx.send(NetCmd::Shutdown).unwrap();
        net.join().unwrap();
    }

    #[test]
    fn stale_generation_pages_are_discarded() {
        let send_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        let dest = client.local_addr().unwrap();
        let (tx, rx) = unbounded();
        let (etx, _erx) = unbounded();
        let net = std::thread::spawn(move || {
            run(
                send_sock,
                Duration::from_millis(2),
                rx,
                etx,
                MsuMetrics::new(),
                Arc::new(AtomicBool::new(false)),
            )
        });

        let shared = mk_stream(11, FileKind::Raw, 2, 2000);
        // Pretend a seek already happened: current gen is 1.
        {
            let mut ctl = shared.ctl.lock();
            ctl.gen = 1;
            ctl.start_seq = 0;
        }
        let group = GroupShared::new(GroupId(11), 1);
        let (mut p, c) = spsc::ring(4);
        tx.send(NetCmd::AddPlay {
            shared: Arc::clone(&shared),
            group: Arc::clone(&group),
            consumer: c,
            dest,
            pacing: PacingSpec::Constant {
                rate: BitRate::from_mbps(8),
                packet_bytes: 1000,
            },
            geometry: Geometry {
                page_size: 4096,
                internal_size: 512,
                max_keys: 8,
            },
        })
        .unwrap();
        // A stale page (gen 0) followed by a current one (gen 1).
        p.push(PageBuf {
            gen: 0,
            index: 0,
            skip: 0,
            valid: 1000,
            data: vec![0xAA; 4096].into(),
        })
        .unwrap();
        p.push(PageBuf {
            gen: 1,
            index: 1,
            skip: 0,
            valid: 1000,
            data: vec![0xBB; 4096].into(),
        })
        .unwrap();
        group.prime(StreamId(11));
        shared.ctl.lock().eof = true;

        let pkts = recv_all(&client, true, Duration::from_secs(5));
        let media: Vec<_> = pkts
            .iter()
            .filter(|(h, _)| h.kind == PacketKind::Media)
            .collect();
        assert_eq!(media.len(), 1);
        assert!(
            media[0].1.iter().all(|&b| b == 0xBB),
            "only the gen-1 page plays"
        );
        tx.send(NetCmd::Shutdown).unwrap();
        net.join().unwrap();
    }

    #[test]
    fn record_receiver_builds_records_and_closes_ring() {
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sink_addr = sink.local_addr().unwrap();
        let shared = mk_stream(21, FileKind::IbTree, 0, 0);
        let (producer, mut consumer) = spsc::ring(64);
        let stop = Arc::new(AtomicBool::new(false));
        let module = calliope_proto::module::registry(
            calliope_types::content::ProtocolId::ConstantRate,
            Some(BitRate::from_kbps(64)),
        );
        let h = spawn_record_receiver(
            sink,
            Arc::clone(&shared),
            module,
            producer,
            Arc::clone(&stop),
            MsuMetrics::new(),
        );

        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        for seq in 0..5u32 {
            let header = DataHeader {
                stream: StreamId(21),
                seq,
                offset: MediaTime::ZERO,
                kind: PacketKind::Media,
            };
            client
                .send_to(&header.encode_packet(&[seq as u8; 100]), sink_addr)
                .unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        // End-of-stream marker terminates the receiver.
        let eos = DataHeader {
            stream: StreamId(21),
            seq: 5,
            offset: MediaTime::ZERO,
            kind: PacketKind::EndOfStream,
        };
        client.send_to(&eos.encode_packet(&[]), sink_addr).unwrap();
        h.join().unwrap();

        let mut records = Vec::new();
        loop {
            match consumer.pop() {
                Ok(r) => records.push(r),
                Err(PopError::Empty) => std::thread::sleep(Duration::from_millis(1)),
                Err(PopError::Closed) => break,
            }
        }
        assert_eq!(records.len(), 5);
        assert_eq!(
            records[0].offset,
            MediaTime::ZERO,
            "first packet is time zero"
        );
        for w in records.windows(2) {
            assert!(
                w[1].offset >= w[0].offset,
                "arrival-derived schedule is monotone"
            );
        }
        // relaxed: single-threaded test readback.
        assert_eq!(shared.stats.packets.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn record_receiver_ignores_foreign_and_garbage_datagrams() {
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sink_addr = sink.local_addr().unwrap();
        let shared = mk_stream(31, FileKind::IbTree, 0, 0);
        let (producer, mut consumer) = spsc::ring(16);
        let stop = Arc::new(AtomicBool::new(false));
        let module = calliope_proto::module::registry(
            calliope_types::content::ProtocolId::ConstantRate,
            None,
        );
        let h = spawn_record_receiver(
            sink,
            shared,
            module,
            producer,
            Arc::clone(&stop),
            MsuMetrics::new(),
        );
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client.send_to(b"not a calliope packet", sink_addr).unwrap();
        // A packet for a different stream id.
        let foreign = DataHeader {
            stream: StreamId(999),
            seq: 0,
            offset: MediaTime::ZERO,
            kind: PacketKind::Media,
        };
        client
            .send_to(&foreign.encode_packet(&[1; 10]), sink_addr)
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::Release);
        h.join().unwrap();
        assert_eq!(consumer.pop(), Err(PopError::Closed), "nothing recorded");
    }
}
