//! The Multimedia Storage Unit (MSU).
//!
//! "Each MSU is a PC with a set of disks, an interface to Calliope's
//! intra-server network and an interface to the external high-speed
//! network. The MSU runs a simple multi-process control program that
//! assigns a process to each network device and disk while a central
//! process handles RPCs from the Coordinator and from clients." (paper
//! §2.3)
//!
//! This crate is that control program, with OS threads standing in for
//! the original's processes:
//!
//! * a **disk thread per disk** ([`disk`]) runs the duty cycle: it
//!   services its streams round-robin, reading 256 KB pages into memory
//!   and writing recorded pages out;
//! * a **network thread** ([`net`]) paces packet delivery against each
//!   stream's (stored or calculated) schedule and transmits over UDP;
//!   per-recording receiver threads feed incoming packets through their
//!   protocol modules;
//! * the **central control thread** ([`control`]) talks to the
//!   Coordinator and opens the VCR control connection to each client;
//! * threads exchange data through [`spsc`], a lock-free single-
//!   producer/single-consumer ring that "relies on the atomicity of
//!   memory read and write instructions to produce atomic enqueue and
//!   dequeue operations" — the paper's semaphore-free shared-memory
//!   queue;
//! * double buffering (§2.2.1) falls out of the ring capacity: a play
//!   stream's ring holds two 256 KB pages, so the disk thread fills one
//!   while the network thread drains the other.
//!
//! Pure logic — pacing ([`pacer`]), packetization ([`packetize`]), and
//! trick-play position mapping ([`trick`]) — is separated from the
//! threads so it can be tested exhaustively without sockets or disks.
//!
//! The concurrent kernels ([`spsc`], [`pool`]) build on the
//! `calliope-check` shim types, so compiling with
//! `RUSTFLAGS="--cfg calliope_check"` turns their tests into exhaustive
//! model-checking runs (see `tests/model.rs`).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod control;
pub mod disk;
pub mod metrics;
pub mod net;
pub mod pacer;
pub mod packetize;
pub mod pool;
pub mod server;
pub mod spsc;
pub mod stream;
pub mod trick;

pub use config::MsuConfig;
pub use pool::{PageData, PagePool, PooledBuf};
pub use server::MsuServer;
