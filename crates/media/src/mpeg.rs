//! A synthetic MPEG-1-like elementary stream.
//!
//! The MSU treats MPEG content as an opaque constant-rate byte stream
//! (paper §2.3.1: "the MPEG encoders that we have produce an opaque
//! stream with no framing information. … Parsing the MPEG stream is too
//! expensive to do in real time"). The *offline* filter, however, must
//! find frame boundaries to select every 15th frame. This synthetic
//! format keeps both properties: the MSU never looks inside, while the
//! filter can parse it cheaply.
//!
//! Stream = concatenated frames; each frame is a 16-byte header plus a
//! pseudo-random payload. GOP structure follows the paper: every
//! `GOP_SIZE`-th frame is intra-coded (I), with P and B frames between
//! (pattern `I B B P B B P B B P B B P B B`). Frame sizes are fixed per
//! type and scaled so the stream runs at the requested constant rate.

use calliope_types::error::{Error, Result};
use calliope_types::time::BitRate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Frames per group of pictures; every `GOP_SIZE`-th frame is an
/// I-frame ("intra-encoding is used for every N-th frame … typically,
/// fifteen to thirty", paper §2.3.1).
pub const GOP_SIZE: usize = 15;

/// Frames per second of the synthetic encoding.
pub const FRAME_RATE: u32 = 30;

/// Byte length of a frame header.
pub const FRAME_HEADER_LEN: usize = 16;

/// Frame-header sync word (`"MPEG"` little-endian).
pub const FRAME_SYNC: u32 = 0x4745_504D;

/// Frame types in the synthetic GOP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameType {
    /// Intra-coded: decodable alone; the only frames trick-play keeps.
    I,
    /// Predicted from the previous I/P frame.
    P,
    /// Bidirectionally predicted.
    B,
}

impl FrameType {
    /// The type of frame `n` within the fixed GOP pattern.
    pub fn of_frame(n: u64) -> FrameType {
        match n as usize % GOP_SIZE {
            0 => FrameType::I,
            i if i % 3 == 0 => FrameType::P,
            _ => FrameType::B,
        }
    }

    /// Relative size weight of this frame type (I frames are largest).
    fn weight(self) -> f64 {
        match self {
            FrameType::I => 3.0,
            FrameType::P => 1.2,
            FrameType::B => 0.6,
        }
    }

    const fn tag(self) -> u8 {
        match self {
            FrameType::I => 0,
            FrameType::P => 1,
            FrameType::B => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<FrameType> {
        match tag {
            0 => Some(FrameType::I),
            1 => Some(FrameType::P),
            2 => Some(FrameType::B),
            _ => None,
        }
    }
}

/// A parsed frame (borrowing the stream buffer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Sequential frame number from the start of the stream.
    pub number: u64,
    /// I, P, or B.
    pub frame_type: FrameType,
    /// Payload bytes (header excluded).
    pub payload: &'a [u8],
}

impl Frame<'_> {
    /// Total encoded length, header included.
    pub fn encoded_len(&self) -> usize {
        FRAME_HEADER_LEN + self.payload.len()
    }
}

fn payload_bytes_per_frame(rate: BitRate, frame_type: FrameType) -> usize {
    // Scale weights so one GOP totals rate · GOP_duration bytes.
    let gop_weight: f64 = (0..GOP_SIZE as u64)
        .map(|n| FrameType::of_frame(n).weight())
        .sum();
    let gop_bytes = rate.bps() as f64 / 8.0 * GOP_SIZE as f64 / FRAME_RATE as f64;
    let unit = gop_bytes / gop_weight;
    ((unit * frame_type.weight()) as usize).saturating_sub(FRAME_HEADER_LEN)
}

/// Generates `seconds` of synthetic MPEG at the given constant rate.
///
/// Deterministic in `seed`, so tests and benches can reproduce content
/// byte-for-byte.
pub fn generate(rate: BitRate, seconds: u32, seed: u64) -> Vec<u8> {
    let frames = seconds as u64 * FRAME_RATE as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out =
        Vec::with_capacity(rate.as_byte_rate().bytes_per_sec() as usize * seconds as usize);
    for n in 0..frames {
        let ty = FrameType::of_frame(n);
        let len = payload_bytes_per_frame(rate, ty);
        out.extend_from_slice(&FRAME_SYNC.to_le_bytes());
        out.push(ty.tag());
        out.push(0);
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&(len as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 2]);
        let mut payload = vec![0u8; len];
        rng.fill(payload.as_mut_slice());
        out.extend_from_slice(&payload);
    }
    out
}

/// Parses a synthetic MPEG stream into frames.
///
/// This is the *offline* path (the filter, tests); the MSU never calls
/// it.
pub fn parse(stream: &[u8]) -> Result<Vec<Frame<'_>>> {
    let mut frames = Vec::new();
    let mut at = 0usize;
    while at < stream.len() {
        if stream.len() - at < FRAME_HEADER_LEN {
            return Err(Error::Protocol {
                msg: format!("truncated frame header at byte {at}"),
            });
        }
        let sync = u32::from_le_bytes(stream[at..at + 4].try_into().expect("4 bytes"));
        if sync != FRAME_SYNC {
            return Err(Error::Protocol {
                msg: format!("bad frame sync at byte {at}"),
            });
        }
        let ty = FrameType::from_tag(stream[at + 4]).ok_or_else(|| Error::Protocol {
            msg: format!("bad frame type at byte {at}"),
        })?;
        let number =
            u32::from_le_bytes(stream[at + 6..at + 10].try_into().expect("4 bytes")) as u64;
        let len =
            u32::from_le_bytes(stream[at + 10..at + 14].try_into().expect("4 bytes")) as usize;
        if stream.len() - at - FRAME_HEADER_LEN < len {
            return Err(Error::Protocol {
                msg: format!("truncated frame payload at byte {at}"),
            });
        }
        frames.push(Frame {
            number,
            frame_type: ty,
            payload: &stream[at + FRAME_HEADER_LEN..at + FRAME_HEADER_LEN + len],
        });
        at += FRAME_HEADER_LEN + len;
    }
    Ok(frames)
}

/// Re-serializes frames into a stream buffer (used by the filter).
pub fn serialize<'a>(frames: impl IntoIterator<Item = &'a Frame<'a>>) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, f) in frames.into_iter().enumerate() {
        out.extend_from_slice(&FRAME_SYNC.to_le_bytes());
        out.push(f.frame_type.tag());
        out.push(0);
        // Renumber densely so the output is itself a valid stream.
        out.extend_from_slice(&(i as u32).to_le_bytes());
        out.extend_from_slice(&(f.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(f.payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gop_pattern_matches_the_paper() {
        // I B B P B B P B B P B B P B B, repeating.
        let expect = [
            FrameType::I,
            FrameType::B,
            FrameType::B,
            FrameType::P,
            FrameType::B,
            FrameType::B,
            FrameType::P,
            FrameType::B,
            FrameType::B,
            FrameType::P,
            FrameType::B,
            FrameType::B,
            FrameType::P,
            FrameType::B,
            FrameType::B,
        ];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(FrameType::of_frame(i as u64), *e, "frame {i}");
            assert_eq!(FrameType::of_frame((i + GOP_SIZE) as u64), *e);
        }
        // Exactly one I frame per GOP — the frames trick-play keeps.
        let i_frames = (0..GOP_SIZE as u64)
            .filter(|&n| FrameType::of_frame(n) == FrameType::I)
            .count();
        assert_eq!(i_frames, 1);
    }

    #[test]
    fn generate_parse_round_trip() {
        let stream = generate(BitRate::from_kbps(1500), 2, 42);
        let frames = parse(&stream).unwrap();
        assert_eq!(frames.len(), 60);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.number, i as u64);
            assert_eq!(f.frame_type, FrameType::of_frame(i as u64));
        }
    }

    #[test]
    fn stream_rate_is_constant_within_two_percent() {
        let rate = BitRate::from_kbps(1500);
        let stream = generate(rate, 10, 7);
        let actual_bps = stream.len() as f64 * 8.0 / 10.0;
        let err = (actual_bps - 1_500_000.0).abs() / 1_500_000.0;
        assert!(err < 0.02, "rate off by {:.1}%", err * 100.0);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = generate(BitRate::from_kbps(1500), 1, 9);
        let b = generate(BitRate::from_kbps(1500), 1, 9);
        let c = generate(BitRate::from_kbps(1500), 1, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn i_frames_are_largest() {
        let stream = generate(BitRate::from_kbps(1500), 1, 1);
        let frames = parse(&stream).unwrap();
        let i_len = frames
            .iter()
            .find(|f| f.frame_type == FrameType::I)
            .unwrap()
            .payload
            .len();
        let b_len = frames
            .iter()
            .find(|f| f.frame_type == FrameType::B)
            .unwrap()
            .payload
            .len();
        assert!(i_len > 3 * b_len, "I={i_len} B={b_len}");
    }

    #[test]
    fn parse_rejects_corruption() {
        let mut stream = generate(BitRate::from_kbps(500), 1, 3);
        assert!(parse(&stream[..10]).is_err(), "truncated header");
        stream[0] ^= 0xFF;
        assert!(parse(&stream).is_err(), "bad sync");
        let mut stream2 = generate(BitRate::from_kbps(500), 1, 3);
        stream2[4] = 99;
        assert!(parse(&stream2).is_err(), "bad frame type");
        let stream3 = generate(BitRate::from_kbps(500), 1, 3);
        assert!(
            parse(&stream3[..stream3.len() - 5]).is_err(),
            "truncated payload"
        );
    }

    #[test]
    fn serialize_renumbers_densely() {
        let stream = generate(BitRate::from_kbps(500), 1, 3);
        let frames = parse(&stream).unwrap();
        let subset: Vec<_> = frames.iter().step_by(5).copied().collect();
        let out = serialize(subset.iter());
        let back = parse(&out).unwrap();
        assert_eq!(back.len(), subset.len());
        for (i, f) in back.iter().enumerate() {
            assert_eq!(f.number, i as u64);
            assert_eq!(f.payload, subset[i].payload);
        }
    }

    #[test]
    fn empty_stream_parses_to_nothing() {
        assert!(parse(&[]).unwrap().is_empty());
    }
}
