//! Property suite for the elevator's batch planning and run
//! coalescing: whatever batch the duty cycle hands the disk process,
//! the coalesced multi-block transfers must cover exactly the
//! requested blocks (no loss, no duplication), never overlap, and the
//! SCAN issue order must stay monotone within each sweep direction.

use calliope_storage::elevator::{coalesce_runs, ElevatorState};
use proptest::prelude::*;

/// A batch of distinct block addresses (duty cycles never read the
/// same block twice in one cycle).
fn unique_addrs() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..10_000, 0..48).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    /// Every request appears in exactly one run, and within a run the
    /// members map one-to-one onto the consecutive blocks
    /// `start .. start + len` — the contract that lets the disk
    /// process issue a run as a single multi-block transfer and hand
    /// each page back to the right stream. Holds even for degenerate
    /// batches with repeated addresses.
    #[test]
    fn runs_cover_exactly_the_batch(
        addrs in proptest::collection::vec(0u64..10_000, 0..48),
        head in 0u64..10_000,
        up in any::<bool>(),
    ) {
        let mut el = ElevatorState { head, up };
        let order = el.plan(&addrs);
        let runs = coalesce_runs(&addrs, &order);
        let mut seen = vec![0usize; addrs.len()];
        for run in &runs {
            prop_assert!(!run.is_empty(), "coalesce_runs produced an empty run");
            for (k, &m) in run.members.iter().enumerate() {
                prop_assert_eq!(
                    addrs[m],
                    run.start + k as u64,
                    "member {} of run at {} does not map to its block",
                    k,
                    run.start
                );
                seen[m] += 1;
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            prop_assert_eq!(count, 1, "request {} appears {} times", i, count);
        }
    }

    /// With distinct addresses the runs partition the batch: no two
    /// runs' block ranges intersect, so no block is transferred twice.
    #[test]
    fn runs_do_not_overlap(
        addrs in unique_addrs(),
        head in 0u64..10_000,
        up in any::<bool>(),
    ) {
        let mut el = ElevatorState { head, up };
        let order = el.plan(&addrs);
        let mut runs = coalesce_runs(&addrs, &order);
        runs.sort_by_key(|r| r.start);
        for w in runs.windows(2) {
            prop_assert!(
                w[0].start + w[0].len() as u64 <= w[1].start,
                "runs [{}, +{}) and [{}, +{}) overlap",
                w[0].start, w[0].len(), w[1].start, w[1].len()
            );
        }
    }

    /// SCAN issue order is monotone per sweep: the plan decomposes
    /// into at most two monotone segments, and when both sweeps are
    /// present the first follows the elevator's current direction and
    /// the second is the reversal — never a zig-zag.
    #[test]
    fn plan_is_monotone_per_sweep(
        addrs in proptest::collection::vec(0u64..10_000, 0..48),
        head in 0u64..10_000,
        up in any::<bool>(),
    ) {
        let mut el = ElevatorState { head, up };
        let order = el.plan(&addrs);
        prop_assert_eq!(order.len(), addrs.len());
        // Direction changes along the issue order, equal neighbors
        // (duplicate addresses) ignored.
        let mut dirs: Vec<bool> = Vec::new();
        for w in order.windows(2) {
            let (a, b) = (addrs[w[0]], addrs[w[1]]);
            if a == b {
                continue;
            }
            let d = b > a;
            if dirs.last() != Some(&d) {
                dirs.push(d);
            }
        }
        prop_assert!(dirs.len() <= 2, "issue order zig-zags: {:?}", dirs);
        if dirs.len() == 2 {
            prop_assert_eq!(dirs[0], up, "first sweep fights the head direction");
            prop_assert_eq!(dirs[1], !up, "second sweep must be the reversal");
        }
    }

    /// Coalescing the plan never increases the number of transfers
    /// beyond the number of requests, and a fully contiguous batch
    /// collapses to a single run.
    #[test]
    fn contiguous_batches_collapse(
        start in 0u64..10_000,
        len in 1usize..48,
        head in 0u64..10_000,
        up in any::<bool>(),
    ) {
        let addrs: Vec<u64> = (0..len as u64).map(|i| start + i).collect();
        let mut el = ElevatorState { head, up };
        let order = el.plan(&addrs);
        let runs = coalesce_runs(&addrs, &order);
        prop_assert!(runs.len() <= addrs.len());
        prop_assert_eq!(runs.len(), 1, "contiguous batch split into {:?}", runs);
        prop_assert_eq!(runs[0].start, start);
    }
}
