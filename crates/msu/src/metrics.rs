//! MSU-wide metric handles.
//!
//! One [`MsuMetrics`] is built at server start and shared (via `Arc`)
//! with every disk thread, the network thread, and each recording
//! receiver. The handles are pre-registered so the hot paths never
//! touch the registry lock — each update is a relaxed atomic on an
//! already-resolved `Arc`.

use calliope_obs::{Counter, Gauge, Histogram, Registry, LATENCY_US_BUCKETS};
use std::sync::Arc;

/// Time budget for one disk duty-cycle pass: the paper's 10 ms timer
/// granularity. A pass that runs longer than this records the overrun.
pub const DISK_CYCLE_BUDGET_US: u64 = 10_000;

/// Bucket bounds for per-duty-cycle batch sizes (pages).
pub const BATCH_PAGES_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Pre-registered metric handles for one MSU.
pub struct MsuMetrics {
    /// The registry backing every handle (snapshot source).
    pub registry: Registry,
    /// Media packets transmitted by the network thread.
    pub packets_sent: Arc<Counter>,
    /// Payload bytes transmitted.
    pub bytes_sent: Arc<Counter>,
    /// Packets sent more than one pacing tick behind schedule.
    pub deadline_misses: Arc<Counter>,
    /// Send lateness relative to the pacing deadline, µs.
    pub send_lateness_us: Arc<Histogram>,
    /// Packets received by recording receivers.
    pub packets_recorded: Arc<Counter>,
    /// Payload bytes received by recording receivers.
    pub bytes_recorded: Arc<Counter>,
    /// Service time of one page read off a disk, µs.
    pub disk_read_us: Arc<Histogram>,
    /// Service time of one recording-drain batch, µs.
    pub disk_write_us: Arc<Histogram>,
    /// Amount by which a disk duty-cycle pass exceeded its budget, µs.
    pub disk_cycle_overrun_us: Arc<Histogram>,
    /// Pages issued per duty-cycle batch (elevator-ordered).
    pub disk_batch_pages: Arc<Histogram>,
    /// Coalesced transfers issued (each covers one or more pages).
    pub disk_coalesced_runs: Arc<Counter>,
    /// Pages that rode a multi-page coalesced transfer; the coalesce
    /// ratio is this over `disk.batched_pages_total`.
    pub disk_batched_pages: Arc<Counter>,
    /// Every page issued through the batched path (ratio denominator).
    pub disk_batched_pages_total: Arc<Counter>,
    /// Head travel (blocks) the elevator saved vs. serving the same
    /// batch in round-robin gather order.
    pub disk_seek_saved_blocks: Arc<Counter>,
    /// Times the page pool was empty and a read fell back to the heap.
    pub pool_exhausted: Arc<Counter>,
    /// Play-ring (page queue) depth; high-water is the interesting part.
    pub play_ring_depth: Arc<Gauge>,
    /// Record-ring depth; high-water is the interesting part.
    pub record_ring_depth: Arc<Gauge>,
    /// Live streams in the control-plane registry.
    pub streams_active: Arc<Gauge>,
    /// Disk I/O errors that killed a stream (each one surfaces to the
    /// Coordinator as `StreamDone { reason: IoError }`).
    pub io_errors: Arc<Counter>,
}

impl std::fmt::Debug for MsuMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsuMetrics").finish_non_exhaustive()
    }
}

impl MsuMetrics {
    /// Builds the registry and resolves every handle.
    pub fn new() -> Arc<MsuMetrics> {
        let registry = Registry::new();
        let m = MsuMetrics {
            packets_sent: registry.counter("net.packets_sent"),
            bytes_sent: registry.counter("net.bytes_sent"),
            deadline_misses: registry.counter("net.deadline_misses"),
            send_lateness_us: registry.histogram("net.send_lateness_us", LATENCY_US_BUCKETS),
            packets_recorded: registry.counter("net.packets_recorded"),
            bytes_recorded: registry.counter("net.bytes_recorded"),
            disk_read_us: registry.histogram("disk.read_service_us", LATENCY_US_BUCKETS),
            disk_write_us: registry.histogram("disk.write_service_us", LATENCY_US_BUCKETS),
            disk_cycle_overrun_us: registry.histogram("disk.cycle_overrun_us", LATENCY_US_BUCKETS),
            disk_batch_pages: registry.histogram("disk.batch_pages", BATCH_PAGES_BUCKETS),
            disk_coalesced_runs: registry.counter("disk.coalesced_runs"),
            disk_batched_pages: registry.counter("disk.batched_pages"),
            disk_batched_pages_total: registry.counter("disk.batched_pages_total"),
            disk_seek_saved_blocks: registry.counter("disk.seek_saved_blocks"),
            pool_exhausted: registry.counter("disk.pool_exhausted"),
            play_ring_depth: registry.gauge("spsc.play_ring_depth"),
            record_ring_depth: registry.gauge("spsc.record_ring_depth"),
            streams_active: registry.gauge("streams.active"),
            io_errors: registry.counter("msu.io_errors"),
            registry,
        };
        Arc::new(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calliope_types::wire::stats::MetricValue;

    #[test]
    fn handles_feed_the_registry_snapshot() {
        let m = MsuMetrics::new();
        m.packets_sent.add(7);
        m.send_lateness_us.record(1_200);
        m.play_ring_depth.observe_peak(2);
        let snap = m.registry.snapshot("msu-0");
        assert_eq!(snap.counter("net.packets_sent"), 7);
        match snap.get("net.send_lateness_us") {
            Some(MetricValue::Histogram { count, .. }) => assert_eq!(*count, 1),
            other => panic!("unexpected {other:?}"),
        }
        match snap.get("spsc.play_ring_depth") {
            Some(MetricValue::Gauge { high_water, .. }) => assert_eq!(*high_water, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
