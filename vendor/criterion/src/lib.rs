//! Offline stand-in for the `criterion` crate.
//!
//! Provides the criterion 0.5 API surface this workspace's benches
//! use — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`/`iter_batched`, throughput annotation — backed by
//! a simple calibrated timing loop that prints per-iteration time
//! (and throughput when set) to stdout. No statistics, no HTML
//! reports.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost (ignored: every batch is
/// one iteration here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Parses CLI arguments (accepted and ignored for compatibility).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, 10, &mut f);
        self
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.throughput, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    f: &mut F,
) {
    // Warm-up + calibration pass.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~20ms per sample, capped to keep total runtime sane.
    let iters_per_sample = (Duration::from_millis(20).as_nanos() / per_iter.as_nanos()).max(1);
    let iters_per_sample = iters_per_sample.min(1_000_000) as u64;

    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / (iters_per_sample as u32);
        if per < best {
            best = per;
        }
    }
    let ns = best.as_nanos() as f64;
    match throughput {
        Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
            let rate = bytes as f64 / (ns / 1e9) / 1e6;
            println!("  {name}: {ns:.0} ns/iter ({rate:.1} MB/s)");
        }
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let rate = n as f64 / (ns / 1e9);
            println!("  {name}: {ns:.0} ns/iter ({rate:.0} elem/s)");
        }
        _ => println!("  {name}: {ns:.0} ns/iter"),
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per iteration;
    /// setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Bytes(8));
        g.sample_size(2);
        let mut count = 0u64;
        g.bench_function("noop", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t2");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
