//! The content-type model.
//!
//! Every item in Calliope's table of contents has a *content type* (paper
//! §2.1–2.2). The type determines the rate at which content is played,
//! whether that rate is constant or variable, and — for variable-rate
//! encodings — separate bandwidth and storage consumption rates: bandwidth
//! is reserved near the stream's peak rate while disk space is charged
//! near its average rate.
//!
//! Types may be *composite*: a `Seminar` type composed of one VAT audio
//! type and one RTP video type, for example. Composite types carry no
//! rates of their own; their resource demand is the sum of their atomic
//! components, and playing one creates a *stream group* pinned to a single
//! MSU.

use crate::error::{Error, Result};
use crate::time::{BitRate, ByteRate};
use core::fmt;

/// The wire protocol used to deliver packets of an atomic content type.
///
/// Protocol modules (paper §2.3.2) are small: a header definition plus a
/// hook that derives delivery times while recording. The enum names the
/// module; its behaviour lives in `calliope-proto`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolId {
    /// Fixed-size packets at a constant rate (e.g. raw MPEG-1 to a dumb
    /// set-top decoder). Delivery schedule is computed, not stored.
    ConstantRate,
    /// RTP video: two ports (data + control), sender timestamps in the
    /// header used for delivery times.
    Rtp,
    /// VAT audio: small fixed-rate packets with a VAT header.
    Vat,
}

impl ProtocolId {
    /// All known protocol ids, for table-driven tests and registries.
    pub const ALL: [ProtocolId; 3] = [ProtocolId::ConstantRate, ProtocolId::Rtp, ProtocolId::Vat];

    /// Stable numeric tag used on the wire.
    pub const fn tag(self) -> u8 {
        match self {
            ProtocolId::ConstantRate => 0,
            ProtocolId::Rtp => 1,
            ProtocolId::Vat => 2,
        }
    }

    /// Inverse of [`ProtocolId::tag`].
    pub fn from_tag(tag: u8) -> Option<ProtocolId> {
        match tag {
            0 => Some(ProtocolId::ConstantRate),
            1 => Some(ProtocolId::Rtp),
            2 => Some(ProtocolId::Vat),
            _ => None,
        }
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProtocolId::ConstantRate => "constant-rate",
            ProtocolId::Rtp => "rtp",
            ProtocolId::Vat => "vat",
        };
        f.write_str(name)
    }
}

/// Whether an atomic type plays at a constant or variable rate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContentKind {
    /// Constant bit-rate: bandwidth and storage are consumed at the same
    /// rate, and the delivery schedule is calculated rather than stored.
    Constant {
        /// The single play/record rate.
        rate: BitRate,
    },
    /// Variable bit-rate: bandwidth is reserved near the peak rate,
    /// storage near the average rate, and a delivery schedule is stored
    /// interleaved with the data (in the IB-tree).
    Variable {
        /// Bandwidth reservation rate (close to the stream's peak).
        bandwidth: BitRate,
        /// Storage consumption rate (close to the stream's average).
        storage: ByteRate,
    },
}

/// The definition of one content type in the Coordinator's type table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentTypeSpec {
    /// Unique type name, e.g. `"mpeg1"`, `"nv-video"`, `"seminar"`.
    pub name: String,
    /// Atomic (rates + protocol) or composite (component type names).
    pub body: TypeBody,
}

/// The body of a [`ContentTypeSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeBody {
    /// A single stream delivered by one protocol module.
    Atomic {
        /// How packets of this type travel on the wire.
        protocol: ProtocolId,
        /// Constant- or variable-rate resource demands.
        kind: ContentKind,
    },
    /// A bundle of previously-defined atomic types (e.g. Seminar = one VAT
    /// audio + one RTP video). Component names must refer to atomic types;
    /// Calliope does not nest composites.
    Composite {
        /// Names of the atomic component types, in display-port order.
        components: Vec<String>,
    },
}

impl ContentTypeSpec {
    /// Convenience constructor for an atomic constant-rate type.
    pub fn constant(name: &str, protocol: ProtocolId, rate: BitRate) -> Self {
        ContentTypeSpec {
            name: name.to_owned(),
            body: TypeBody::Atomic {
                protocol,
                kind: ContentKind::Constant { rate },
            },
        }
    }

    /// Convenience constructor for an atomic variable-rate type.
    pub fn variable(
        name: &str,
        protocol: ProtocolId,
        bandwidth: BitRate,
        storage: ByteRate,
    ) -> Self {
        ContentTypeSpec {
            name: name.to_owned(),
            body: TypeBody::Atomic {
                protocol,
                kind: ContentKind::Variable { bandwidth, storage },
            },
        }
    }

    /// Convenience constructor for a composite type.
    pub fn composite(name: &str, components: &[&str]) -> Self {
        ContentTypeSpec {
            name: name.to_owned(),
            body: TypeBody::Composite {
                components: components.iter().map(|s| (*s).to_owned()).collect(),
            },
        }
    }

    /// Returns true if this is a composite type.
    pub fn is_composite(&self) -> bool {
        matches!(self.body, TypeBody::Composite { .. })
    }

    /// Bandwidth the Coordinator must reserve to play one stream of this
    /// type, if atomic.
    ///
    /// Composite types have no rate of their own; callers sum their
    /// components. Returns an error for composites so misuse is loud.
    pub fn bandwidth(&self) -> Result<BitRate> {
        match &self.body {
            TypeBody::Atomic { kind, .. } => Ok(match kind {
                ContentKind::Constant { rate } => *rate,
                ContentKind::Variable { bandwidth, .. } => *bandwidth,
            }),
            TypeBody::Composite { .. } => Err(Error::CompositeHasNoRate {
                type_name: self.name.clone(),
            }),
        }
    }

    /// Storage rate charged while recording this type, if atomic.
    pub fn storage_rate(&self) -> Result<ByteRate> {
        match &self.body {
            TypeBody::Atomic { kind, .. } => Ok(match kind {
                ContentKind::Constant { rate } => rate.as_byte_rate(),
                ContentKind::Variable { storage, .. } => *storage,
            }),
            TypeBody::Composite { .. } => Err(Error::CompositeHasNoRate {
                type_name: self.name.clone(),
            }),
        }
    }

    /// The protocol module for this type, if atomic.
    pub fn protocol(&self) -> Result<ProtocolId> {
        match &self.body {
            TypeBody::Atomic { protocol, .. } => Ok(*protocol),
            TypeBody::Composite { .. } => Err(Error::CompositeHasNoRate {
                type_name: self.name.clone(),
            }),
        }
    }

    /// True if the type stores a delivery schedule (variable rate).
    ///
    /// Constant-rate schedules are calculated at playback time instead.
    pub fn stores_schedule(&self) -> bool {
        matches!(
            self.body,
            TypeBody::Atomic {
                kind: ContentKind::Variable { .. },
                ..
            }
        )
    }
}

/// Well-known content types used across tests, examples, and benches.
///
/// Rates follow the paper: 1.5 Mbit/s MPEG-1; NV files averaging 635–877
/// Kbit/s with 50 ms-window peaks of 2.0–5.4 Mbit/s (we reserve bandwidth
/// at 2 Mbit/s, a conservative peak, and charge storage at ~100 KB/s, near
/// the average); VAT audio at a nominal 64 Kbit/s. VAT is an MBone tool,
/// so — like NV — its packet stream is stored with its delivery schedule
/// (the IB-tree), preserving the 20 ms packet framing; bandwidth is
/// reserved slightly above nominal for the headers.
pub fn builtin_types() -> Vec<ContentTypeSpec> {
    vec![
        ContentTypeSpec::constant("mpeg1", ProtocolId::ConstantRate, BitRate::from_kbps(1_500)),
        ContentTypeSpec::variable(
            "nv-video",
            ProtocolId::Rtp,
            BitRate::from_mbps(2),
            ByteRate::from_bytes_per_sec(100_000),
        ),
        ContentTypeSpec::variable(
            "vat-audio",
            ProtocolId::Vat,
            BitRate::from_kbps(80),
            ByteRate::from_bytes_per_sec(10_500),
        ),
        ContentTypeSpec::composite("seminar", &["nv-video", "vat-audio"]),
    ]
}

/// One entry in the Coordinator's table of contents, as shown to clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentEntry {
    /// Content name, unique within the server.
    pub name: String,
    /// Name of the content's type in the type table.
    pub type_name: String,
    /// Total size in bytes (sum over replicas is not included; this is the
    /// size of one copy, summed over composite components).
    pub bytes: u64,
    /// Playing time in microseconds.
    pub duration_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_tags_round_trip() {
        for p in ProtocolId::ALL {
            assert_eq!(ProtocolId::from_tag(p.tag()), Some(p));
        }
        assert_eq!(ProtocolId::from_tag(250), None);
    }

    #[test]
    fn constant_type_uses_same_rate_for_both() {
        let t =
            ContentTypeSpec::constant("mpeg1", ProtocolId::ConstantRate, BitRate::from_kbps(1_500));
        assert_eq!(t.bandwidth().unwrap(), BitRate::from_kbps(1_500));
        assert_eq!(t.storage_rate().unwrap().bytes_per_sec(), 1_500_000 / 8);
        assert!(!t.stores_schedule());
        assert!(!t.is_composite());
    }

    #[test]
    fn variable_type_reserves_peak_charges_average() {
        let t = ContentTypeSpec::variable(
            "nv",
            ProtocolId::Rtp,
            BitRate::from_mbps(2),
            ByteRate::from_bytes_per_sec(80_000),
        );
        // Bandwidth (peak) exceeds storage (average): the paper's rule.
        assert!(
            t.bandwidth().unwrap().as_byte_rate().bytes_per_sec()
                > t.storage_rate().unwrap().bytes_per_sec()
        );
        assert!(t.stores_schedule());
    }

    #[test]
    fn composite_type_has_no_rates() {
        let t = ContentTypeSpec::composite("seminar", &["nv", "vat"]);
        assert!(t.is_composite());
        assert!(t.bandwidth().is_err());
        assert!(t.storage_rate().is_err());
        assert!(t.protocol().is_err());
        assert!(!t.stores_schedule());
    }

    #[test]
    fn builtin_types_are_consistent() {
        let types = builtin_types();
        assert_eq!(types.len(), 4);
        let seminar = types.iter().find(|t| t.name == "seminar").unwrap();
        if let TypeBody::Composite { components } = &seminar.body {
            for c in components {
                let comp = types
                    .iter()
                    .find(|t| &t.name == c)
                    .expect("component exists");
                assert!(!comp.is_composite(), "no nested composites");
            }
        } else {
            panic!("seminar must be composite");
        }
    }
}
