//! E3 — Graph 2: cumulative packet-delivery distribution for variable
//! bit-rate (NV) streams, plus the single-file pathology.

use calliope_bench::{banner, horizon_secs};
use calliope_media::{measure, nv};
use calliope_sim::msu_model::{run, MsuWorkload};

fn traces(secs: u32, seed: u64) -> Vec<Vec<(u64, u32)>> {
    nv::paper_files()
        .iter()
        .map(|p| {
            nv::generate(p, secs, seed)
                .into_iter()
                .map(|pkt| (pkt.time_us, pkt.payload.len() as u32))
                .collect()
        })
        .collect()
}

fn main() {
    banner(
        "E3",
        "Cumulative packet delivery distribution, variable bit-rate (NV)",
        "Graph 2, §3.2.2",
    );
    let secs = horizon_secs();

    // Workload characterization, like the paper's: average rates and
    // 50 ms-window peaks of the three files.
    println!(
        "synthetic NV files (paper: averages 650/635/877 Kbit/s, 50 ms peaks 2.0–5.4 Mbit/s):"
    );
    for p in nv::paper_files() {
        let pkts = nv::generate(&p, 60, 7);
        println!(
            "  {:8}  avg {:>4} kbit/s  50ms-peak {:.1} Mbit/s  ({} packets/min, ~1 KB each)",
            p.name,
            measure::avg_bps(&pkts) / 1000,
            measure::peak_bps(&pkts, 50_000) as f64 / 1e6,
            pkts.len(),
        );
    }
    println!();

    let files = traces(60, 7);
    println!(
        "{:>8} | {:>9} | {:>7} {:>7} {:>7} {:>7} {:>8} | {:>9}",
        "streams", "packets", "≤10ms", "≤20ms", "≤50ms", "≤150ms", "max(ms)", "wire MB/s"
    );
    println!("{}", "-".repeat(86));
    for n in [15usize, 16, 17] {
        let r = run(&MsuWorkload::vbr(n, &files, secs, 42));
        println!(
            "{:>8} | {:>9} | {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>8.1} | {:>9.2}",
            n,
            r.packets,
            r.cdf.pct_within_ms(10),
            r.cdf.pct_within_ms(20),
            r.cdf.pct_within_ms(50),
            r.cdf.pct_within_ms(150),
            r.cdf.max_ms(),
            r.wire_mb_s,
        );
    }
    println!();
    println!("Curve series for plotting (cumulative % by ms late):");
    for n in [15usize, 16, 17] {
        let r = run(&MsuWorkload::vbr(n, &files, secs, 42));
        let points: Vec<String> = [0usize, 5, 10, 20, 30, 50, 75, 100, 150, 200, 300]
            .iter()
            .map(|ms| format!("{ms}:{:.1}", r.cdf.pct_within_ms(*ms)))
            .collect();
        println!("  n={n:2}  {}", points.join("  "));
    }

    // The paper's single-file pathology: all streams play the same
    // file, started simultaneously — bursts stack perfectly and the MSU
    // "could only produce 11 streams instead of 15."
    println!();
    println!("Single-file case (all streams synchronized on the burstiest file):");
    let one = vec![files[2].clone()];
    for n in [11usize, 13, 15] {
        let r = run(&MsuWorkload::vbr(n, &one, secs, 42));
        println!(
            "  n={n:2}  within 50 ms: {:>5.1}%   max {:>7.1} ms   mean {:>6.1} ms",
            r.cdf.pct_within_ms(50),
            r.cdf.max_ms(),
            r.cdf.mean_ms(),
        );
    }
    println!();
    println!("Paper reference: 15 variable-rate streams acceptable, 17 at the");
    println!("performance limit; VBR notably worse than CBR (1 KB packets cost");
    println!("~4x the per-byte processing; NV bursts defeat exact timing); a");
    println!("single looped file supports only 11 streams instead of 15.");
}
