//! Shared types for the Calliope distributed multimedia server.
//!
//! This crate holds everything the other Calliope crates agree on:
//!
//! * strongly-typed identifiers ([`ids`]),
//! * media time and rate units ([`time`]),
//! * the content-type model with separate bandwidth and storage rates
//!   ([`content`]),
//! * VCR commands ([`vcr`]),
//! * the error type ([`error`]),
//! * the length-prefixed binary wire codec and every control-plane message
//!   exchanged between clients, the Coordinator, and MSUs ([`wire`]).
//!
//! The design follows the paper "Calliope: A Distributed, Scalable
//! Multimedia Server" (USENIX 1996): clients and servers exchange control
//! information over TCP and multimedia data over UDP, so the wire module
//! provides both a TCP frame codec and the fixed-size UDP data-packet
//! header.

pub mod content;
pub mod error;
pub mod ids;
pub mod time;
pub mod trace;
pub mod vcr;
pub mod wire;

pub use content::{ContentEntry, ContentKind, ContentTypeSpec};
pub use error::{Error, Result};
pub use ids::{ClientId, ContentId, DiskId, GroupId, MsuId, PortId, SessionId, StreamId};
pub use time::{BitRate, ByteRate, MediaTime};
pub use trace::{SpanKind, TraceCtx};
pub use vcr::VcrCommand;
