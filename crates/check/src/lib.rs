//! Shimmed concurrency primitives plus a deterministic "loom-lite"
//! model checker for the MSU's lock-free core.
//!
//! The paper's MSU relies on "the atomicity of memory read and write
//! instructions to produce atomic enqueue and dequeue operations"
//! (§2.3). That lock-free surface — the SPSC page ring, the refcounted
//! page pool, the atomic metrics — is guarded here by machine checking
//! rather than code review alone.
//!
//! # How it works
//!
//! Production code imports its concurrency primitives from this crate
//! instead of `std`/`parking_lot`:
//!
//! - [`sync::atomic::AtomicUsize`], [`sync::atomic::AtomicU64`],
//!   [`sync::atomic::AtomicBool`]
//! - [`sync::Arc`], [`sync::Mutex`]
//! - [`cell::UnsafeCell`]
//! - [`thread::spawn`]
//!
//! In a normal build these are zero-cost re-exports (or `#[repr(transparent)]`
//! wrappers) of the real types — there is no runtime difference.
//!
//! Under `RUSTFLAGS="--cfg calliope_check"` they become instrumented
//! versions that route every operation through [`model`]'s scheduler. A
//! test wraps its concurrent scenario in [`model::model`] (or a
//! configured [`model::Checker`]); the scheduler then re-runs the
//! scenario under every reachable thread interleaving (depth-first over
//! scheduling decisions), additionally exploring *weak-memory* effects:
//! an `Acquire`/`Relaxed` load may observe any store in the location's
//! history that the C11 coherence and release/acquire rules permit
//! (`SeqCst` is totalized — a `SeqCst` load observes the latest store).
//! Equivalent interleavings are pruned by hashing Foata normal forms of
//! the execution trace (state hashing), and a failing execution prints
//! its decision trace, replayable via `CALLIOPE_CHECK_REPLAY`.
//!
//! Outside a model run (for example when ordinary unit tests execute
//! with the cfg enabled), the instrumented types transparently fall
//! back to the real primitives, so the whole workspace can be built and
//! tested under the cfg.

pub mod cell;
pub mod sync;
pub mod thread;

#[cfg(calliope_check)]
pub mod model;

#[cfg(calliope_check)]
pub use model::{model, Checker, Report};
