//! Offline stand-in for the `tracing` crate.
//!
//! A minimal structured-logging facade with the familiar macro
//! surface — `trace!`/`debug!`/`info!`/`warn!`/`error!` (optionally
//! with `target:`), and `span!`/`info_span!`/`debug_span!` whose
//! guards maintain a per-thread span stack included with every event.
//!
//! Events route to a process-global [`Subscriber`]. When no subscriber
//! is installed (the default), the global level gate stays at OFF and
//! every macro reduces to a single relaxed atomic load and branch —
//! no formatting, no allocation.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A verbosity level. Ordered: `TRACE < DEBUG < INFO < WARN < ERROR`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Level(pub u8);

impl Level {
    /// Finest-grained events.
    pub const TRACE: Level = Level(0);
    /// Developer diagnostics.
    pub const DEBUG: Level = Level(1);
    /// Notable lifecycle events.
    pub const INFO: Level = Level(2);
    /// Unexpected but handled situations.
    pub const WARN: Level = Level(3);
    /// Failures.
    pub const ERROR: Level = Level(4);

    /// The level's canonical upper-case name.
    pub fn name(&self) -> &'static str {
        match self.0 {
            0 => "TRACE",
            1 => "DEBUG",
            2 => "INFO",
            3 => "WARN",
            _ => "ERROR",
        }
    }

    /// Parses `"info"`, `"WARN"`, … (`None` for `"off"` / unknown).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::TRACE),
            "debug" => Some(Level::DEBUG),
            "info" => Some(Level::INFO),
            "warn" | "warning" => Some(Level::WARN),
            "error" => Some(Level::ERROR),
            _ => None,
        }
    }
}

impl fmt::Debug for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Sentinel for "nothing enabled".
const OFF: u8 = u8::MAX;

/// The global level gate: events below this level short-circuit in
/// the macros before any formatting happens.
static MIN_LEVEL: AtomicU8 = AtomicU8::new(OFF);

static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();

/// Receives events and span lifecycle notifications.
pub trait Subscriber: Send + Sync {
    /// Fine-grained (per-target) filtering, called after the global
    /// gate passes.
    fn enabled(&self, target: &str, level: Level) -> bool {
        let _ = (target, level);
        true
    }

    /// One event. `spans` is the current thread's span stack,
    /// outermost first, each rendered as `name{fields}`.
    fn event(&self, target: &str, level: Level, spans: &[String], message: fmt::Arguments<'_>);
}

/// Installs the process-global subscriber and opens the level gate to
/// `min_level` (`None` keeps everything off). Returns false if a
/// subscriber was already installed.
pub fn set_subscriber(sub: Box<dyn Subscriber>, min_level: Option<Level>) -> bool {
    let ok = SUBSCRIBER.set(sub).is_ok();
    if ok {
        MIN_LEVEL.store(min_level.map_or(OFF, |l| l.0), Ordering::Release);
    }
    ok
}

/// The fast path: is anything at `level` possibly enabled?
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    level.0 >= MIN_LEVEL.load(Ordering::Relaxed) && MIN_LEVEL.load(Ordering::Relaxed) != OFF
}

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<String>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Routes one event to the subscriber (called by the macros after the
/// level gate).
pub fn dispatch(target: &str, level: Level, message: fmt::Arguments<'_>) {
    if let Some(sub) = SUBSCRIBER.get() {
        if sub.enabled(target, level) {
            SPAN_STACK.with(|s| sub.event(target, level, &s.borrow(), message));
        }
    }
}

/// A named region of execution. Created by [`span!`]; push it on the
/// current thread with [`Span::enter`].
pub struct Span {
    rendered: Option<String>,
}

impl Span {
    /// A live span (used by the `span!` macro).
    pub fn new(_level: Level, _target: &'static str, name: &str, fields: String) -> Span {
        let rendered = if fields.is_empty() {
            name.to_owned()
        } else {
            format!("{name}{{{fields}}}")
        };
        Span {
            rendered: Some(rendered),
        }
    }

    /// A disabled span: entering it is free.
    pub fn none() -> Span {
        Span { rendered: None }
    }

    /// Pushes the span onto this thread's stack until the guard drops.
    pub fn enter(&self) -> Entered<'_> {
        if let Some(r) = &self.rendered {
            SPAN_STACK.with(|s| s.borrow_mut().push(r.clone()));
            Entered {
                live: true,
                _span: std::marker::PhantomData,
            }
        } else {
            Entered {
                live: false,
                _span: std::marker::PhantomData,
            }
        }
    }
}

/// Guard returned by [`Span::enter`].
pub struct Entered<'a> {
    live: bool,
    _span: std::marker::PhantomData<&'a Span>,
}

impl Drop for Entered<'_> {
    fn drop(&mut self) {
        if self.live {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Creates a [`Span`] at an explicit level:
/// `span!(Level::INFO, "play", stream = id)`.
#[macro_export]
macro_rules! span {
    ($lvl:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        if $crate::enabled($lvl) {
            #[allow(unused_mut)]
            let mut __fields = String::new();
            $({
                use std::fmt::Write as _;
                if !__fields.is_empty() { __fields.push(' '); }
                let _ = write!(__fields, concat!(stringify!($k), "={}"), $v);
            })*
            $crate::Span::new($lvl, module_path!(), $name, __fields)
        } else {
            $crate::Span::none()
        }
    }};
}

/// `span!` at INFO.
#[macro_export]
macro_rules! info_span {
    ($($arg:tt)+) => { $crate::span!($crate::Level::INFO, $($arg)+) };
}

/// `span!` at DEBUG.
#[macro_export]
macro_rules! debug_span {
    ($($arg:tt)+) => { $crate::span!($crate::Level::DEBUG, $($arg)+) };
}

/// `span!` at TRACE.
#[macro_export]
macro_rules! trace_span {
    ($($arg:tt)+) => { $crate::span!($crate::Level::TRACE, $($arg)+) };
}

/// Emits one event at an explicit level, with optional `target:`.
#[macro_export]
macro_rules! event {
    ($lvl:expr, target: $target:expr, $($arg:tt)+) => {{
        let __lvl = $lvl;
        if $crate::enabled(__lvl) {
            $crate::dispatch($target, __lvl, format_args!($($arg)+));
        }
    }};
    ($lvl:expr, $($arg:tt)+) => {
        $crate::event!($lvl, target: module_path!(), $($arg)+)
    };
}

/// TRACE-level event.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::event!($crate::Level::TRACE, $($arg)+) };
}

/// DEBUG-level event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::event!($crate::Level::DEBUG, $($arg)+) };
}

/// INFO-level event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::event!($crate::Level::INFO, $($arg)+) };
}

/// WARN-level event.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::event!($crate::Level::WARN, $($arg)+) };
}

/// ERROR-level event.
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::event!($crate::Level::ERROR, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    struct Capture {
        events: Mutex<Vec<String>>,
        count: AtomicUsize,
    }

    impl Subscriber for &'static Capture {
        fn event(&self, target: &str, level: Level, spans: &[String], msg: fmt::Arguments<'_>) {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.events
                .lock()
                .unwrap()
                .push(format!("{level} {target} [{}] {msg}", spans.join(">")));
        }
    }

    // The subscriber is process-global, so exercise everything in one
    // test body.
    #[test]
    fn events_spans_and_gating() {
        assert!(!enabled(Level::ERROR), "default is off");
        info!("this is dropped before formatting");

        static CAP: Capture = Capture {
            events: Mutex::new(Vec::new()),
            count: AtomicUsize::new(0),
        };
        assert!(set_subscriber(Box::new(&CAP), Some(Level::DEBUG)));
        assert!(enabled(Level::DEBUG));
        assert!(enabled(Level::ERROR));
        assert!(!enabled(Level::TRACE));

        trace!("still dropped: below the gate");
        assert_eq!(CAP.count.load(Ordering::Relaxed), 0);

        info!("plain {}", 1);
        warn!(target: "custom", "targeted");
        {
            let span = span!(Level::INFO, "session", id = 42);
            let _g = span.enter();
            debug!("inside");
            {
                let inner = info_span!("stream", sid = 7);
                let _g2 = inner.enter();
                error!("deep");
            }
        }
        info!("outside again");

        let events = CAP.events.lock().unwrap().clone();
        assert_eq!(events.len(), 5);
        assert!(events[0].contains("INFO") && events[0].contains("plain 1"));
        assert!(events[1].contains("custom"));
        assert!(events[2].contains("[session{id=42}] inside"));
        assert!(events[3].contains("session{id=42}>stream{sid=7}"));
        assert!(events[4].contains("[] outside"));

        // Second install is refused.
        assert!(!set_subscriber(Box::new(&CAP), Some(Level::TRACE)));
    }
}
