//! The Multimedia Storage Unit daemon.
//!
//! ```sh
//! calliope-msu --coordinator HOST:PORT [--data-dir PATH] [--disks N]
//!              [--blocks N] [--bind IP] [--tick-ms N] [--previous ID]
//! ```
//!
//! Opens (or formats) `N` file-backed disks of `blocks` × 256 KB under
//! the data directory, registers with the Coordinator, and serves
//! streams until killed. `--previous` re-registers under a prior
//! identity after a restart (paper §2.2 fault tolerance).

use calliope_msu::config::{DiskSpec, MsuConfig};
use calliope_msu::MsuServer;
use calliope_types::MsuId;
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: calliope-msu --coordinator HOST:PORT [--data-dir PATH] \
         [--disks N] [--blocks N] [--bind IP] [--tick-ms N] [--previous ID]"
    );
    std::process::exit(2);
}

fn main() {
    calliope_obs::init_logging();
    let mut coordinator: Option<SocketAddr> = None;
    let mut data_dir = std::path::PathBuf::from("./calliope-msu-data");
    let mut disks = 2usize;
    let mut blocks = 8192u64; // a 2 GB "Barracuda", sparse on disk
    let mut bind_ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
    let mut tick_ms = 10u64;
    let mut previous: Option<MsuId> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--coordinator" => coordinator = Some(val().parse().unwrap_or_else(|_| usage())),
            "--data-dir" => data_dir = val().into(),
            "--disks" => disks = val().parse().unwrap_or_else(|_| usage()),
            "--blocks" => blocks = val().parse().unwrap_or_else(|_| usage()),
            "--bind" => bind_ip = val().parse().unwrap_or_else(|_| usage()),
            "--tick-ms" => tick_ms = val().parse().unwrap_or_else(|_| usage()),
            "--previous" => previous = Some(MsuId(val().parse().unwrap_or_else(|_| usage()))),
            _ => usage(),
        }
    }
    let Some(coordinator) = coordinator else {
        usage()
    };

    let cfg = MsuConfig {
        coordinator,
        data_dir: data_dir.clone(),
        disks: (0..disks).map(|_| DiskSpec::healthy(blocks)).collect(),
        bind_ip,
        net_tick: Duration::from_millis(tick_ms.max(1)),
        previous_id: previous,
    };
    let server = match MsuServer::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("calliope-msu: {e}");
            std::process::exit(1);
        }
    };
    println!("calliope MSU running");
    println!("  identity    : {}", server.id());
    println!(
        "  disks       : {disks} × {blocks} blocks under {}",
        data_dir.display()
    );
    println!("  disk ids    : {:?}", server.disk_ids());
    println!("(^C to stop)");
    let main_span = tracing::info_span!("msu", id = server.id());
    let _guard = main_span.enter();
    tracing::info!("serving: {disks} disks, tick {tick_ms} ms");
    loop {
        std::thread::sleep(Duration::from_secs(30));
        println!("status: {} active streams", server.stream_count());
    }
}
