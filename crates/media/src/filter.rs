//! The offline fast-forward / fast-backward filter.
//!
//! "To implement fast forward and fast backward scans, we used an
//! offline filtering program. … The filtering program reads the
//! recorded stream, selects every fifteenth video frame, recompresses
//! the filtered stream, and loads it into the server. For the
//! fast-backward version, the frames are stored in the filtered stream
//! in reverse order. This filtering procedure is not automatic in the
//! current implementation; an administrator has to produce the fast
//! forward and fast backward versions of the content." (paper §2.3.1)
//!
//! With the synthetic GOP (an I frame every 15th frame), selecting
//! every 15th frame keeps exactly the intra-coded frames — the only
//! ones decodable in isolation — just as a real MPEG filter would.

use crate::mpeg;
use calliope_types::error::{Error, Result};

/// The paper's skip factor: keep every 15th frame.
pub const SKIP: usize = 15;

/// Produces the fast-forward stream: every `skip`-th frame, forward
/// order.
pub fn fast_forward(stream: &[u8], skip: usize) -> Result<Vec<u8>> {
    if skip == 0 {
        return Err(Error::Protocol {
            msg: "skip factor must be positive".into(),
        });
    }
    let frames = mpeg::parse(stream)?;
    let selected: Vec<_> = frames.iter().step_by(skip).copied().collect();
    Ok(mpeg::serialize(selected.iter()))
}

/// Produces the fast-backward stream: every `skip`-th frame, reverse
/// order.
pub fn fast_backward(stream: &[u8], skip: usize) -> Result<Vec<u8>> {
    if skip == 0 {
        return Err(Error::Protocol {
            msg: "skip factor must be positive".into(),
        });
    }
    let frames = mpeg::parse(stream)?;
    let mut selected: Vec<_> = frames.iter().step_by(skip).copied().collect();
    selected.reverse();
    Ok(mpeg::serialize(selected.iter()))
}

/// Maps a position in the normal-rate stream to the corresponding
/// position in a filtered stream, as a fraction of total length.
///
/// "The MSU seeks to the frame in the fast forward file corresponding
/// to the current frame of the normal rate file" — with every `skip`-th
/// frame kept, normal-rate frame `n` corresponds to filtered frame
/// `n / skip`.
pub fn filtered_frame_of(normal_frame: u64, skip: usize) -> u64 {
    normal_frame / skip as u64
}

/// The inverse mapping: filtered frame `f` corresponds to normal frame
/// `f · skip`.
pub fn normal_frame_of(filtered_frame: u64, skip: usize) -> u64 {
    filtered_frame * skip as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpeg::{generate, parse, FrameType};
    use calliope_types::time::BitRate;

    fn stream() -> Vec<u8> {
        generate(BitRate::from_kbps(1500), 4, 11)
    }

    #[test]
    fn fast_forward_keeps_only_i_frames() {
        let s = stream();
        let ff = fast_forward(&s, SKIP).unwrap();
        let frames = parse(&ff).unwrap();
        assert_eq!(frames.len(), 4 * 30 / SKIP); // 8 frames
        for f in &frames {
            assert_eq!(
                f.frame_type,
                FrameType::I,
                "every kept frame is intra-coded"
            );
        }
    }

    #[test]
    fn fast_forward_preserves_order_and_content() {
        let s = stream();
        let original = parse(&s).unwrap();
        let ff = fast_forward(&s, SKIP).unwrap();
        let kept = parse(&ff).unwrap();
        for (i, f) in kept.iter().enumerate() {
            assert_eq!(f.payload, original[i * SKIP].payload);
        }
    }

    #[test]
    fn fast_backward_reverses() {
        let s = stream();
        let ff = fast_forward(&s, SKIP).unwrap();
        let fb = fast_backward(&s, SKIP).unwrap();
        let fwd = parse(&ff).unwrap();
        let bwd = parse(&fb).unwrap();
        assert_eq!(fwd.len(), bwd.len());
        for (a, b) in fwd.iter().zip(bwd.iter().rev()) {
            assert_eq!(a.payload, b.payload);
        }
    }

    #[test]
    fn filtered_stream_is_much_smaller() {
        let s = stream();
        let ff = fast_forward(&s, SKIP).unwrap();
        // I frames are ~3× average size, so the FF file is ~3/15 = 20%
        // of the original.
        let ratio = ff.len() as f64 / s.len() as f64;
        assert!((0.1..0.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn frame_mapping_round_trips() {
        for n in [0u64, 1, 14, 15, 29, 30, 449] {
            let f = filtered_frame_of(n, SKIP);
            let back = normal_frame_of(f, SKIP);
            assert!(back <= n && n - back < SKIP as u64);
        }
    }

    #[test]
    fn zero_skip_is_rejected() {
        assert!(fast_forward(&stream(), 0).is_err());
        assert!(fast_backward(&stream(), 0).is_err());
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(fast_forward(&[1, 2, 3], SKIP).is_err());
    }

    #[test]
    fn empty_stream_filters_to_empty() {
        assert!(fast_forward(&[], SKIP).unwrap().is_empty());
        assert!(fast_backward(&[], SKIP).unwrap().is_empty());
    }
}
