//! Media time and rate units.
//!
//! Calliope's delivery schedules store packet delivery times as *offsets
//! from the beginning of the recording session* (paper §2.2.1), not as
//! absolute times. [`MediaTime`] is that offset, with microsecond
//! resolution. [`BitRate`] and [`ByteRate`] are the consumption rates the
//! Coordinator tracks per content type — bandwidth in bits/second (the
//! unit the paper quotes stream rates in) and storage in bytes/second.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An offset from the beginning of a recording, in microseconds.
///
/// `MediaTime` is the key of the IB-tree: a sequential scan of the tree
/// yields packets in non-decreasing `MediaTime` order, which is delivery
/// order.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MediaTime(pub u64);

impl MediaTime {
    /// The zero offset — the instant the recording started.
    pub const ZERO: MediaTime = MediaTime(0);

    /// Creates a media time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        MediaTime(us)
    }

    /// Creates a media time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        MediaTime(ms * 1_000)
    }

    /// Creates a media time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        MediaTime(s * 1_000_000)
    }

    /// Returns the offset in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the offset in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the offset as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns this offset as a [`Duration`].
    pub const fn as_duration(self) -> Duration {
        Duration::from_micros(self.0)
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    pub const fn saturating_sub(self, other: MediaTime) -> MediaTime {
        MediaTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition of a duration expressed in microseconds.
    pub const fn checked_add_micros(self, us: u64) -> Option<MediaTime> {
        match self.0.checked_add(us) {
            Some(v) => Some(MediaTime(v)),
            None => None,
        }
    }
}

impl fmt::Debug for MediaTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for MediaTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0 / 1_000;
        write!(f, "{}.{:03}s", total_ms / 1_000, total_ms % 1_000)
    }
}

impl Add for MediaTime {
    type Output = MediaTime;
    fn add(self, rhs: MediaTime) -> MediaTime {
        MediaTime(self.0 + rhs.0)
    }
}

impl AddAssign for MediaTime {
    fn add_assign(&mut self, rhs: MediaTime) {
        self.0 += rhs.0;
    }
}

impl Sub for MediaTime {
    type Output = MediaTime;
    fn sub(self, rhs: MediaTime) -> MediaTime {
        MediaTime(self.0 - rhs.0)
    }
}

impl From<Duration> for MediaTime {
    fn from(d: Duration) -> Self {
        MediaTime(d.as_micros() as u64)
    }
}

/// A data rate in bits per second.
///
/// The paper quotes stream rates this way ("1.5 Mbit/sec MPEG-1").
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitRate(pub u64);

impl BitRate {
    /// Creates a rate from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        BitRate(bps)
    }

    /// Creates a rate from kilobits (10^3 bits) per second.
    pub const fn from_kbps(kbps: u64) -> Self {
        BitRate(kbps * 1_000)
    }

    /// Creates a rate from megabits (10^6 bits) per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        BitRate(mbps * 1_000_000)
    }

    /// Returns the rate in bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Returns the rate in (truncated) bytes per second.
    pub const fn as_byte_rate(self) -> ByteRate {
        ByteRate(self.0 / 8)
    }

    /// Time needed to transmit `bytes` at this rate.
    ///
    /// Returns [`MediaTime::ZERO`] for a zero rate rather than dividing by
    /// zero; a zero-rate stream never makes progress, and callers treat the
    /// zero answer as "immediately due".
    pub fn transmit_time(self, bytes: u64) -> MediaTime {
        if self.0 == 0 {
            return MediaTime::ZERO;
        }
        // bits * 1e6 / rate, in u128 to avoid overflow for large files.
        let us = (bytes as u128 * 8 * 1_000_000) / self.0 as u128;
        MediaTime(us as u64)
    }

    /// Bytes transmitted in `t` at this rate (truncated).
    pub fn bytes_in(self, t: MediaTime) -> u64 {
        ((self.0 as u128 * t.0 as u128) / (8 * 1_000_000)) as u64
    }
}

impl fmt::Debug for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(100_000) {
            write!(
                f,
                "{}.{}Mbit/s",
                self.0 / 1_000_000,
                (self.0 / 100_000) % 10
            )
        } else if self.0 >= 1_000 {
            write!(f, "{}kbit/s", self.0 / 1_000)
        } else {
            write!(f, "{}bit/s", self.0)
        }
    }
}

/// A data rate in bytes per second, used for disk-space accounting.
///
/// For variable-rate encodings the Coordinator allocates *bandwidth* near
/// the stream's peak rate but *storage* near its average rate (paper
/// §2.2), so the two rates are distinct types.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteRate(pub u64);

impl ByteRate {
    /// Creates a rate from bytes per second.
    pub const fn from_bytes_per_sec(bps: u64) -> Self {
        ByteRate(bps)
    }

    /// Returns the rate in bytes per second.
    pub const fn bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Storage consumed by `secs` seconds at this rate.
    pub const fn bytes_for_secs(self, secs: u64) -> u64 {
        self.0 * secs
    }
}

impl fmt::Debug for ByteRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B/s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_time_conversions() {
        assert_eq!(MediaTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(MediaTime::from_millis(1500).as_millis(), 1500);
        assert_eq!(MediaTime::from_micros(999).as_millis(), 0);
        assert!((MediaTime::from_millis(500).as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn media_time_arithmetic() {
        let a = MediaTime::from_millis(100);
        let b = MediaTime::from_millis(40);
        assert_eq!(a + b, MediaTime::from_millis(140));
        assert_eq!(a - b, MediaTime::from_millis(60));
        assert_eq!(b.saturating_sub(a), MediaTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, MediaTime::from_millis(140));
    }

    #[test]
    fn media_time_display() {
        assert_eq!(MediaTime::from_millis(1234).to_string(), "1.234s");
        assert_eq!(MediaTime::ZERO.to_string(), "0.000s");
    }

    #[test]
    fn bitrate_transmit_time_mpeg_block() {
        // A 256 KByte block at 1.5 Mbit/s takes ~1.4 seconds — the paper's
        // "a 256 KByte buffer contains only about one second of video".
        let rate = BitRate::from_kbps(1_500);
        let t = rate.transmit_time(256 * 1024);
        assert!(t.as_millis() > 1_300 && t.as_millis() < 1_500, "{t}");
    }

    #[test]
    fn bitrate_round_trip_bytes() {
        let rate = BitRate::from_mbps(3);
        let t = rate.transmit_time(1_000_000);
        let back = rate.bytes_in(t);
        assert!((back as i64 - 1_000_000i64).abs() < 10, "{back}");
    }

    #[test]
    fn zero_rate_is_immediately_due() {
        assert_eq!(BitRate(0).transmit_time(1_000_000), MediaTime::ZERO);
        assert_eq!(BitRate(0).bytes_in(MediaTime::from_secs(10)), 0);
    }

    #[test]
    fn bitrate_display_units() {
        assert_eq!(BitRate::from_kbps(1_500).to_string(), "1.5Mbit/s");
        assert_eq!(BitRate::from_kbps(64).to_string(), "64kbit/s");
        assert_eq!(BitRate(500).to_string(), "500bit/s");
    }

    #[test]
    fn byte_rate_storage_math() {
        // 1.5 Mbit/s ≈ 187500 B/s; a 7200-second movie ≈ 1.35 GByte, the
        // paper's "two hour MPEG-1 movie" figure.
        let r = BitRate::from_kbps(1_500).as_byte_rate();
        let movie = r.bytes_for_secs(7_200);
        assert!(movie > 1_300_000_000 && movie < 1_400_000_000, "{movie}");
    }
}
