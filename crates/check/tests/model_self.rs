//! Self-tests for the model checker: litmus shapes with known-good and
//! known-bad outcomes. These prove the checker explores real
//! interleavings and weak-memory behaviors (they are the "does the
//! tool catch a seeded bug" evidence the rest of the workspace leans
//! on). Compiled only under `--cfg calliope_check`.
#![cfg(calliope_check)]

use calliope_check::sync::atomic::{AtomicU64, Ordering};
use calliope_check::sync::{Arc, Mutex};
use calliope_check::{model, thread, Checker};
use std::collections::HashSet;
use std::sync::Mutex as StdMutex;

/// Store-buffer litmus: with relaxed loads both threads may read 0 —
/// the classic weak-memory outcome no sequentially-consistent
/// interleaving produces. Seeing it proves the checker explores more
/// than thread orderings.
#[test]
fn store_buffer_relaxed_observes_both_zero() {
    let outcomes: &'static StdMutex<HashSet<(u64, u64)>> =
        Box::leak(Box::new(StdMutex::new(HashSet::new())));
    let report = model(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        x.store(0, Ordering::Relaxed); // re-anchor program order
        y.store(1, Ordering::Relaxed);
        let a = x.load(Ordering::Relaxed);
        let b = t.join().unwrap();
        outcomes.lock().unwrap().insert((a, b));
    });
    assert!(report.schedules > 1, "must explore multiple interleavings");
    // The weak outcome: each thread misses the other's store.
    // (Thread 0 re-stored 0 to x, so a == 0 means "missed x2's 1".)
    let seen = outcomes.lock().unwrap();
    assert!(
        seen.contains(&(0, 0)),
        "relaxed loads must be able to miss both stores, saw {seen:?}"
    );
}

/// The same shape under SeqCst must never produce the weak outcome:
/// SeqCst accesses are totalized to the newest store.
#[test]
fn store_buffer_seqcst_forbids_both_zero() {
    let report = model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let a = x.load(Ordering::SeqCst);
        let b = t.join().unwrap();
        assert!(
            a == 1 || b == 1,
            "SeqCst store buffering must not lose both stores"
        );
    });
    assert!(report.schedules > 1);
}

/// Message passing done right: a release store publishing data, an
/// acquire load consuming it. Every interleaving must see the payload
/// once the flag is up.
#[test]
fn message_passing_release_acquire_is_sound() {
    let report = model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            if f2.load(Ordering::Acquire) == 1 {
                assert_eq!(
                    d2.load(Ordering::Relaxed),
                    7,
                    "acquire of the flag must make the payload visible"
                );
            }
        });
        data.store(7, Ordering::Relaxed);
        flag.store(1, Ordering::Release);
        t.join().unwrap();
    });
    assert!(report.schedules > 1);
}

/// Message passing done wrong: publishing the flag with a relaxed
/// store lets the consumer see the flag but stale data. The checker
/// must find that interleaving — this is the seeded-bug test.
#[test]
#[should_panic(expected = "seeded relaxed-publish bug")]
fn message_passing_relaxed_publish_is_caught() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            if f2.load(Ordering::Acquire) == 1 {
                assert_eq!(d2.load(Ordering::Relaxed), 7, "seeded relaxed-publish bug");
            }
        });
        data.store(7, Ordering::Relaxed);
        flag.store(1, Ordering::Relaxed); // bug: no release edge
        t.join().unwrap();
    });
}

/// Lost-update: two relaxed read-modify-writes never lose an
/// increment, because RMWs read the newest store in modification
/// order.
#[test]
fn rmw_increments_are_never_lost() {
    let report = model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    assert!(report.schedules > 1);
}

/// A plain store racing an increment CAN lose the increment — the
/// checker must find the interleaving where the store clobbers it.
#[test]
#[should_panic(expected = "store/increment race lost the increment")]
fn store_vs_rmw_lost_update_is_caught() {
    model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        c.store(5, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(
            c.load(Ordering::SeqCst),
            6,
            "store/increment race lost the increment"
        );
    });
}

/// ABBA lock ordering must be reported as a deadlock.
#[test]
#[should_panic(expected = "deadlock")]
fn abba_deadlock_is_detected() {
    model(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let ga = a2.lock();
            let gb = b2.lock();
            drop(gb);
            drop(ga);
        });
        let gb = b.lock();
        let ga = a.lock();
        drop(ga);
        drop(gb);
        t.join().unwrap();
    });
}

/// Mutexes serialize and synchronize: concurrent guarded increments
/// never lose updates.
#[test]
fn mutex_guards_updates() {
    let report = model(|| {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = m.clone();
        let t = thread::spawn(move || {
            *m2.lock() += 1;
        });
        *m.lock() += 1;
        t.join().unwrap();
        assert_eq!(*m.lock(), 2);
    });
    assert!(report.schedules > 1);
}

/// Unsynchronized UnsafeCell access is flagged as a data race before
/// the access executes.
#[test]
#[should_panic(expected = "data race")]
fn unsafe_cell_race_is_detected() {
    struct Racy(calliope_check::cell::UnsafeCell<u64>);
    // SAFETY: deliberately wrong — the cell is shared with no
    // synchronization protocol at all; the checker must catch it.
    unsafe impl Sync for Racy {}
    model(|| {
        let cell = Arc::new(Racy(calliope_check::cell::UnsafeCell::new(0)));
        let c2 = cell.clone();
        let t = thread::spawn(move || {
            c2.0.with_mut(|p|
                // SAFETY: not actually safe — that is the point.
                unsafe { *p = 1 });
        });
        cell.0.with_mut(|p|
            // SAFETY: not actually safe — that is the point.
            unsafe { *p = 2 });
        t.join().unwrap();
    });
}

/// The state-hash pruning fires on commuting operations (two threads
/// touching different locations) without losing any outcome.
#[test]
fn pruning_collapses_independent_interleavings() {
    let report = model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let y2 = y.clone();
        let t = thread::spawn(move || {
            y2.store(1, Ordering::SeqCst);
            y2.store(2, Ordering::SeqCst);
        });
        x.store(1, Ordering::SeqCst);
        x.store(2, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(x.load(Ordering::SeqCst), 2);
        assert_eq!(y.load(Ordering::SeqCst), 2);
    });
    assert!(report.schedules > 1);
    assert!(
        report.pruned > 0,
        "independent stores must collide in the state hash, got {report:?}"
    );
}

/// A bounded checker reports truncation instead of running forever.
#[test]
fn max_schedules_truncates() {
    let checker = Checker {
        max_schedules: 3,
        ..Checker::default()
    };
    let report = checker.check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = x.clone();
        let t = thread::spawn(move || {
            for _ in 0..4 {
                x2.fetch_add(1, Ordering::SeqCst);
            }
        });
        for _ in 0..4 {
            x.fetch_add(1, Ordering::SeqCst);
        }
        t.join().unwrap();
    });
    assert!(report.truncated);
    assert_eq!(report.schedules, 3);
}

/// Three threads, spawn/join edges only: the checker handles more than
/// one child and join synchronization carries the children's writes.
#[test]
fn spawn_join_synchronizes() {
    let report = model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t1 = thread::spawn(move || x2.store(3, Ordering::Relaxed));
        let t2 = thread::spawn(move || y2.store(4, Ordering::Relaxed));
        t1.join().unwrap();
        t2.join().unwrap();
        // Join is an acquire edge: the relaxed stores must be visible.
        assert_eq!(x.load(Ordering::Relaxed), 3);
        assert_eq!(y.load(Ordering::Relaxed), 4);
    });
    assert!(report.schedules > 1);
}

/// Regression: a spawned thread RETURNS a value whose destructor
/// performs model operations (like a queue endpoint). When a pruned
/// execution aborts mid-teardown, that destructor re-raises the abort
/// from inside the wrapper's cleanup path; the checker must still
/// account the wrapper as exited or the whole check wedges waiting for
/// it. This shape used to hang forever.
#[test]
fn returned_value_with_model_drop_does_not_wedge() {
    struct Endpoint(Arc<AtomicU64>);
    impl Drop for Endpoint {
        fn drop(&mut self) {
            // A model op in a destructor: panics with the abort token
            // if the run is tearing down.
            self.0.store(99, Ordering::Release);
        }
    }
    let report = model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = x.clone();
        let t = thread::spawn(move || {
            let v = x2.load(Ordering::Acquire);
            assert!(v == 0 || v == 1 || v == 2);
            Endpoint(x2)
        });
        x.store(1, Ordering::Release);
        x.store(2, Ordering::Release);
        let ep = t.join().unwrap();
        drop(ep);
    });
    assert!(report.schedules > 1);
}
