//! The deterministic model-check scheduler (compiled only under
//! `--cfg calliope_check`).
//!
//! A model run executes the test closure on real OS threads that are
//! *serialized*: every shimmed operation (atomic access, mutex
//! lock/unlock, spawn, join, yield) parks until a global baton says it
//! is this thread's turn, executes its effect under one state lock, and
//! then selects which thread runs the next operation. Each point where
//! more than one choice exists — several runnable threads, or several
//! stores a weak load may observe — is a *decision*; the [`Checker`]
//! re-runs the closure, depth-first, until every decision branch has
//! been explored (or a bound is hit).
//!
//! Weak memory is modeled with per-location store histories and vector
//! clocks: an `Acquire`/`Relaxed` load may observe any store newer than
//! the loader's coherence floor (the newest store it already observed
//! or that happened-before it); `SeqCst` is totalized — a `SeqCst`
//! access observes the newest store. Read-modify-writes always read the
//! newest store (C11 modification order) and continue release
//! sequences. `UnsafeCell` accesses are checked for data races with the
//! same clocks, before the access is performed, so a racy test fails
//! cleanly instead of executing undefined behavior.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Most threads a single model run may register (thread 0 plus spawns).
pub const MAX_THREADS: usize = 8;

/// Per-thread logical clocks, indexed by thread id.
type VClock = [u32; MAX_THREADS];

const ZERO_CLOCK: VClock = [0; MAX_THREADS];

fn join_clock(into: &mut VClock, from: &VClock) {
    for i in 0..MAX_THREADS {
        into[i] = into[i].max(from[i]);
    }
}

/// `true` when every component of `a` is `<=` the matching one of `b`
/// *at the writer's index* — the standard happened-before test for a
/// store with snapshot `a` written by `tid`, judged against clock `b`.
fn store_hb(a: &VClock, tid: usize, b: &VClock) -> bool {
    a[tid] <= b[tid]
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Panic payload used to unwind model threads on teardown; never shown
/// to the user.
pub(crate) struct ModelAbort;

/// One store in a location's modification order.
struct StoreRec {
    val: u64,
    tid: usize,
    /// Writer's clock when the store executed (for happened-before).
    clock: VClock,
    /// Release clock an acquire load of this store joins (empty for a
    /// relaxed store that heads no release sequence).
    rel: VClock,
}

/// One atomic location: its modification order plus per-thread
/// coherence floors (newest store index each thread has observed).
struct LocState {
    stores: Vec<StoreRec>,
    last_seen: [usize; MAX_THREADS],
}

/// One `UnsafeCell`: last write and last read per thread, for clock
/// based race detection.
#[derive(Default)]
struct CellState {
    write: Option<(usize, VClock)>,
    reads: [Option<VClock>; MAX_THREADS],
}

/// One shimmed mutex.
#[derive(Default)]
struct MutexState {
    owner: Option<usize>,
    rel: VClock,
    waiters: Vec<usize>,
    acquisitions: u64,
}

/// A decision point: which branch is being taken this execution, how
/// many exist, and the state-hash key guarding its subtree.
struct Decision {
    chosen: usize,
    total: usize,
    key: u64,
}

/// DFS bookkeeping that survives across executions of one check.
#[derive(Default)]
struct Explorer {
    path: Vec<Decision>,
    explored: HashSet<u64>,
    pruned: u64,
    replay: bool,
}

impl Explorer {
    /// Advances to the next unexplored branch; `false` when the whole
    /// tree is done. Subtree keys are recorded postorder: a decision's
    /// key enters the explored set only once every branch under it has
    /// run, so an execution can never prune against its own ancestors.
    fn backtrack(&mut self) -> bool {
        if self.replay {
            return false;
        }
        loop {
            match self.path.last_mut() {
                None => return false,
                Some(d) if d.chosen + 1 < d.total => {
                    d.chosen += 1;
                    return true;
                }
                Some(d) => {
                    self.explored.insert(d.key);
                    self.path.pop();
                }
            }
        }
    }
}

struct Failure {
    message: String,
    payload: Option<Box<dyn Any + Send>>,
    path: Vec<usize>,
}

/// Everything mutable about one execution, behind the run's one lock.
struct RunState {
    nthreads: usize,
    current: usize,
    runnable: [bool; MAX_THREADS],
    finished: [bool; MAX_THREADS],
    clocks: [VClock; MAX_THREADS],
    final_clocks: [VClock; MAX_THREADS],
    op_counts: [u64; MAX_THREADS],
    join_waits: [Option<usize>; MAX_THREADS],
    locs: Vec<LocState>,
    cells: Vec<CellState>,
    mutexes: Vec<MutexState>,
    /// OS threads (wrappers) still alive; the checker waits for zero.
    live: usize,
    decisions_taken: usize,
    steps: u64,
    cur_hash: u64,
    preemptions_left: u32,
    max_steps: u64,
    aborting: bool,
    failure: Option<Failure>,
    explorer: Explorer,
}

impl RunState {
    fn new(explorer: Explorer, preemption_bound: u32, max_steps: u64) -> RunState {
        RunState {
            nthreads: 1,
            current: 0,
            runnable: {
                let mut r = [false; MAX_THREADS];
                r[0] = true;
                r
            },
            finished: [false; MAX_THREADS],
            clocks: [ZERO_CLOCK; MAX_THREADS],
            final_clocks: [ZERO_CLOCK; MAX_THREADS],
            op_counts: [0; MAX_THREADS],
            join_waits: [None; MAX_THREADS],
            locs: Vec::new(),
            cells: Vec::new(),
            mutexes: Vec::new(),
            live: 1,
            decisions_taken: 0,
            steps: 0,
            cur_hash: 0,
            preemptions_left: preemption_bound,
            max_steps,
            aborting: false,
            failure: None,
            explorer,
        }
    }
}

/// One live model run, shared by the checker and every model thread.
pub(crate) struct Run {
    id: u64,
    state: Mutex<RunState>,
    cond: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// A model thread's identity: the run it belongs to and its id there.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) run: Arc<Run>,
    pub(crate) tid: usize,
}

/// The current thread's model context, if it is a model thread.
pub(crate) fn cur_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Lazily-assigned per-run id of a shimmed object (atomic, mutex or
/// cell). `run_id == 0` means unregistered.
pub(crate) struct Registration(Mutex<(u64, usize)>);

impl Registration {
    pub(crate) const fn new() -> Registration {
        Registration(Mutex::new((0, 0)))
    }
}

impl std::fmt::Debug for Registration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Registration")
    }
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

const KIND_LOAD: u64 = 1;
const KIND_STORE: u64 = 2;
const KIND_RMW: u64 = 3;
const KIND_LOCK: u64 = 4;
const KIND_UNLOCK: u64 = 5;
const KIND_SPAWN: u64 = 6;
const KIND_JOIN: u64 = 7;
const KIND_FINISH: u64 = 8;
const KIND_YIELD: u64 = 9;
const KIND_SCHED: u64 = 16;

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Run {
    fn lock(&self) -> MutexGuard<'_, RunState> {
        unpoison(self.state.lock())
    }

    /// Parks until it is `tid`'s turn, then charges one step and one
    /// clock tick. Every shimmed operation starts here.
    fn enter(&self, tid: usize) -> MutexGuard<'_, RunState> {
        let mut st = self.lock();
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.current == tid {
                break;
            }
            st = unpoison(self.cond.wait(st));
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let cap = st.max_steps;
            self.fail(
                st,
                format!(
                    "model execution exceeded {cap} steps — livelock, or an unbounded retry \
                     loop in the test closure"
                ),
                None,
            );
        }
        st.clocks[tid][tid] += 1;
        st.op_counts[tid] += 1;
        st
    }

    /// Folds one executed operation into the execution's multiset state
    /// hash. Interleavings of *independent* operations produce the same
    /// multiset (same elements, order-insensitive sum), so equivalent
    /// schedules collide on purpose and are pruned; dependent
    /// operations differ in their observed effect (`a`) and stay
    /// distinct. The element deliberately excludes the location id:
    /// per-run ids are assigned in first-touch order, which varies
    /// across interleavings, and `(tid, op_count)` already pins the
    /// program-order op while `a` (a location-local index) pins what it
    /// observed.
    fn record(&self, st: &mut RunState, tid: usize, kind: u64, a: u64) {
        let e = splitmix(
            splitmix(kind ^ ((tid as u64) << 56) ^ (st.op_counts[tid] << 32)) ^ splitmix(a),
        );
        st.cur_hash = st.cur_hash.wrapping_add(e);
    }

    /// Picks among `n` branches at the current decision point,
    /// following the replayed path prefix first, then depth-first.
    fn decide(&self, st: &mut RunState, n: usize, kind: u64) -> usize {
        let depth = st.decisions_taken;
        st.decisions_taken += 1;
        if depth < st.explorer.path.len() {
            let chosen = st.explorer.path[depth].chosen;
            debug_assert!(
                st.explorer.replay || chosen < n,
                "non-deterministic replay: decision {depth} had {n} branches, chose {chosen}"
            );
            return chosen.min(n - 1);
        }
        let key = splitmix(st.cur_hash ^ ((st.preemptions_left as u64) << 8) ^ kind);
        if st.explorer.explored.contains(&key) {
            st.explorer.pruned += 1;
            st.aborting = true;
            self.cond.notify_all();
            // The caller's guard unwinds (poisoning is tolerated
            // everywhere via `unpoison`).
            std::panic::panic_any(ModelAbort);
        }
        st.explorer.path.push(Decision {
            chosen: 0,
            total: n,
            key,
        });
        0
    }

    /// Records a failed execution (assertion, race, deadlock, step cap)
    /// and tears the run down. Never returns.
    fn fail(
        &self,
        mut st: MutexGuard<'_, RunState>,
        message: String,
        payload: Option<Box<dyn Any + Send>>,
    ) -> ! {
        if st.failure.is_none() {
            let path = st.explorer.path.iter().map(|d| d.chosen).collect();
            st.failure = Some(Failure {
                message,
                payload,
                path,
            });
        }
        st.aborting = true;
        self.cond.notify_all();
        drop(st);
        std::panic::panic_any(ModelAbort);
    }

    /// Chooses which thread performs the next operation. Called at the
    /// end of every operation by the thread that just ran it.
    fn select_next(&self, st: &mut MutexGuard<'_, RunState>) {
        let cur = st.current;
        let mut opts: Vec<usize> = (0..st.nthreads)
            .filter(|&t| st.runnable[t] && !st.finished[t])
            .collect();
        if opts.is_empty() {
            if (0..st.nthreads).any(|t| !st.finished[t]) && !st.aborting {
                let blocked: Vec<usize> = (0..st.nthreads).filter(|&t| !st.finished[t]).collect();
                if st.failure.is_none() {
                    let path = st.explorer.path.iter().map(|d| d.chosen).collect();
                    st.failure = Some(Failure {
                        message: format!("deadlock: threads {blocked:?} are blocked forever"),
                        payload: None,
                        path,
                    });
                }
                st.aborting = true;
                self.cond.notify_all();
                std::panic::panic_any(ModelAbort);
            }
            return;
        }
        // The continuation (no preemption) is listed first so branch 0
        // is always the cheapest schedule.
        if let Some(pos) = opts.iter().position(|&t| t == cur) {
            opts.remove(pos);
            opts.insert(0, cur);
        }
        let cur_runnable = opts[0] == cur;
        let next = if opts.len() == 1 {
            opts[0]
        } else if cur_runnable && st.preemptions_left == 0 {
            // Preemption budget spent: forced continuation. This is the
            // CHESS-style bound that keeps exploration tractable.
            cur
        } else {
            let i = self.decide(st, opts.len(), KIND_SCHED);
            let t = opts[i];
            if cur_runnable && t != cur {
                st.preemptions_left -= 1;
            }
            t
        };
        st.current = next;
    }

    /// Finishes an operation: selects the next runner and wakes it.
    fn leave(&self, mut st: MutexGuard<'_, RunState>) {
        self.select_next(&mut st);
        self.cond.notify_all();
    }

    /// Resolves a shimmed object to its per-run id, registering it (and
    /// seeding its initial store from `init`) on first touch. Must be
    /// called with the baton held so registration order is a pure
    /// function of the decision path.
    fn resolve_loc(&self, st: &mut RunState, reg: &Registration, init: u64) -> usize {
        let mut slot = unpoison(reg.0.lock());
        if slot.0 != self.id {
            let id = st.locs.len();
            st.locs.push(LocState {
                stores: vec![StoreRec {
                    val: init,
                    tid: 0,
                    clock: ZERO_CLOCK,
                    rel: ZERO_CLOCK,
                }],
                last_seen: [0; MAX_THREADS],
            });
            *slot = (self.id, id);
        }
        slot.1
    }

    fn resolve_mutex(&self, st: &mut RunState, reg: &Registration) -> usize {
        let mut slot = unpoison(reg.0.lock());
        if slot.0 != self.id {
            let id = st.mutexes.len();
            st.mutexes.push(MutexState::default());
            *slot = (self.id, id);
        }
        slot.1
    }

    fn resolve_cell(&self, reg: &Registration) -> usize {
        let mut st = self.lock();
        let mut slot = unpoison(reg.0.lock());
        if slot.0 != self.id {
            let id = st.cells.len();
            st.cells.push(CellState::default());
            *slot = (self.id, id);
        }
        slot.1
    }

    /// Newest store index the loader is *forced* past: the newest store
    /// it has already observed, or that happened-before it (reading
    /// anything older would violate coherence).
    fn hb_floor(st: &RunState, tid: usize, loc: usize) -> usize {
        let ls = &st.locs[loc];
        let mut floor = ls.last_seen[tid];
        for j in (floor..ls.stores.len()).rev() {
            let rec = &ls.stores[j];
            if store_hb(&rec.clock, rec.tid, &st.clocks[tid]) {
                floor = floor.max(j);
                break;
            }
        }
        floor
    }

    pub(crate) fn atomic_load(
        &self,
        tid: usize,
        reg: &Registration,
        init: u64,
        ord: Ordering,
    ) -> u64 {
        let mut st = self.enter(tid);
        let loc = self.resolve_loc(&mut st, reg, init);
        let latest = st.locs[loc].stores.len() - 1;
        let idx = if ord == Ordering::SeqCst {
            // Totalized: a SeqCst load observes the newest store.
            latest
        } else {
            let floor = Self::hb_floor(&st, tid, loc);
            if floor == latest {
                latest
            } else {
                floor + self.decide(&mut st, latest - floor + 1, KIND_LOAD)
            }
        };
        let (val, rel) = {
            let rec = &st.locs[loc].stores[idx];
            (rec.val, rec.rel)
        };
        st.locs[loc].last_seen[tid] = st.locs[loc].last_seen[tid].max(idx);
        if is_acquire(ord) {
            join_clock(&mut st.clocks[tid], &rel);
        }
        self.record(&mut st, tid, KIND_LOAD, idx as u64);
        self.leave(st);
        val
    }

    pub(crate) fn atomic_store(
        &self,
        tid: usize,
        reg: &Registration,
        init: u64,
        val: u64,
        ord: Ordering,
        set_real: impl FnOnce(u64),
    ) {
        let mut st = self.enter(tid);
        let loc = self.resolve_loc(&mut st, reg, init);
        let rel = if is_release(ord) {
            st.clocks[tid]
        } else {
            ZERO_CLOCK
        };
        let clock = st.clocks[tid];
        let idx = st.locs[loc].stores.len();
        st.locs[loc].stores.push(StoreRec {
            val,
            tid,
            clock,
            rel,
        });
        st.locs[loc].last_seen[tid] = idx;
        set_real(val);
        self.record(&mut st, tid, KIND_STORE, idx as u64);
        self.leave(st);
    }

    /// Read-modify-write: always reads the newest store (C11
    /// modification order) and continues any release sequence it joins.
    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        reg: &Registration,
        init: u64,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
        set_real: impl FnOnce(u64),
    ) -> u64 {
        let mut st = self.enter(tid);
        let loc = self.resolve_loc(&mut st, reg, init);
        let latest = st.locs[loc].stores.len() - 1;
        let (old, prev_rel) = {
            let rec = &st.locs[loc].stores[latest];
            (rec.val, rec.rel)
        };
        if is_acquire(ord) {
            join_clock(&mut st.clocks[tid], &prev_rel);
        }
        let new = f(old);
        let mut rel = if is_release(ord) {
            st.clocks[tid]
        } else {
            ZERO_CLOCK
        };
        // An RMW continues the release sequence of the store it read,
        // whatever its own ordering.
        join_clock(&mut rel, &prev_rel);
        let clock = st.clocks[tid];
        let idx = latest + 1;
        st.locs[loc].stores.push(StoreRec {
            val: new,
            tid,
            clock,
            rel,
        });
        st.locs[loc].last_seen[tid] = idx;
        set_real(new);
        self.record(&mut st, tid, KIND_RMW, idx as u64);
        self.leave(st);
        old
    }

    pub(crate) fn mutex_lock(&self, tid: usize, reg: &Registration) {
        let mut st = self.enter(tid);
        let mid = self.resolve_mutex(&mut st, reg);
        loop {
            if st.mutexes[mid].owner.is_none() {
                st.mutexes[mid].owner = Some(tid);
                st.mutexes[mid].acquisitions += 1;
                let rel = st.mutexes[mid].rel;
                join_clock(&mut st.clocks[tid], &rel);
                let n = st.mutexes[mid].acquisitions;
                self.record(&mut st, tid, KIND_LOCK, n);
                self.leave(st);
                return;
            }
            st.runnable[tid] = false;
            st.mutexes[mid].waiters.push(tid);
            self.select_next(&mut st);
            self.cond.notify_all();
            loop {
                if st.aborting {
                    drop(st);
                    std::panic::panic_any(ModelAbort);
                }
                if st.runnable[tid] && st.current == tid {
                    break;
                }
                st = unpoison(self.cond.wait(st));
            }
        }
    }

    pub(crate) fn mutex_unlock(&self, tid: usize, reg: &Registration) {
        let mut st = self.enter(tid);
        let mid = self.resolve_mutex(&mut st, reg);
        debug_assert_eq!(st.mutexes[mid].owner, Some(tid), "unlock by non-owner");
        st.mutexes[mid].owner = None;
        st.mutexes[mid].rel = st.clocks[tid];
        let waiters = std::mem::take(&mut st.mutexes[mid].waiters);
        for w in waiters {
            st.runnable[w] = true;
        }
        let n = st.mutexes[mid].acquisitions;
        self.record(&mut st, tid, KIND_UNLOCK, n);
        self.leave(st);
    }

    /// Race-checks a read of a shimmed cell. The caller performs the
    /// actual access *after* this returns; a detected race fails the
    /// run before any undefined behavior can execute.
    pub(crate) fn cell_read(&self, tid: usize, reg: &Registration) {
        let cell = self.resolve_cell(reg);
        let mut st = self.lock();
        // FastTrack-style epoch: the access gets its own clock tick, so
        // a clock another thread inherited (spawn) or acquired *before*
        // this access can never appear to cover it.
        st.clocks[tid][tid] += 1;
        if let Some((wtid, wclock)) = st.cells[cell].write {
            if wtid != tid && !store_hb(&wclock, wtid, &st.clocks[tid]) {
                self.fail(
                    st,
                    format!(
                        "data race: thread {tid} reads an UnsafeCell concurrently written by \
                         thread {wtid}"
                    ),
                    None,
                );
            }
        }
        st.cells[cell].reads[tid] = Some(st.clocks[tid]);
        drop(st);
    }

    /// Race-checks a write of a shimmed cell (against the last write
    /// and every thread's last read).
    pub(crate) fn cell_write(&self, tid: usize, reg: &Registration) {
        let cell = self.resolve_cell(reg);
        let mut st = self.lock();
        // See cell_read: the access needs its own epoch.
        st.clocks[tid][tid] += 1;
        if let Some((wtid, wclock)) = st.cells[cell].write {
            if wtid != tid && !store_hb(&wclock, wtid, &st.clocks[tid]) {
                self.fail(
                    st,
                    format!(
                        "data race: thread {tid} writes an UnsafeCell concurrently written by \
                         thread {wtid}"
                    ),
                    None,
                );
            }
        }
        for r in 0..st.nthreads {
            if r == tid {
                continue;
            }
            if let Some(rclock) = st.cells[cell].reads[r] {
                if !store_hb(&rclock, r, &st.clocks[tid]) {
                    self.fail(
                        st,
                        format!(
                            "data race: thread {tid} writes an UnsafeCell concurrently read by \
                             thread {r}"
                        ),
                        None,
                    );
                }
            }
        }
        let clock = st.clocks[tid];
        st.cells[cell].write = Some((tid, clock));
        st.cells[cell].reads = [None; MAX_THREADS];
        drop(st);
    }

    pub(crate) fn yield_op(&self, tid: usize) {
        let mut st = self.enter(tid);
        self.record(&mut st, tid, KIND_YIELD, 0);
        self.leave(st);
    }

    /// Registers a child thread and starts its OS wrapper. The child
    /// inherits the parent's clock (spawn is a release edge).
    pub(crate) fn spawn_thread<T, F>(
        self: &Arc<Self>,
        tid: usize,
        f: F,
    ) -> (usize, std::thread::JoinHandle<Option<T>>)
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let mut st = self.enter(tid);
        let child = st.nthreads;
        if child >= MAX_THREADS {
            self.fail(
                st,
                format!("model run spawned more than {MAX_THREADS} threads"),
                None,
            );
        }
        st.nthreads += 1;
        st.clocks[child] = st.clocks[tid];
        st.runnable[child] = true;
        st.live += 1;
        let run = Arc::clone(self);
        let handle = std::thread::spawn(move || run.thread_main(child, f));
        self.record(&mut st, tid, KIND_SPAWN, child as u64);
        self.leave(st);
        (child, handle)
    }

    /// Body of every model thread (including thread 0): installs the
    /// TLS context, runs the closure, and performs finish bookkeeping.
    pub(crate) fn thread_main<T, F>(self: Arc<Self>, tid: usize, f: F) -> Option<T>
    where
        F: FnOnce() -> T,
    {
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                run: Arc::clone(&self),
                tid,
            })
        });
        // Decrement `live` even if a panic escapes below (e.g. from the
        // drop of a value whose destructor performs model operations
        // while the run is aborting) — the checker waits for `live` to
        // reach zero, so a missed decrement wedges the whole check.
        struct LiveGuard(Arc<Run>);
        impl Drop for LiveGuard {
            fn drop(&mut self) {
                CTX.with(|c| *c.borrow_mut() = None);
                let mut st = self.0.lock();
                st.live -= 1;
                self.0.cond.notify_all();
            }
        }
        let guard = LiveGuard(Arc::clone(&self));
        let result = catch_unwind(AssertUnwindSafe(f));
        let out = match result {
            Ok(v) => {
                // A model panic can still happen inside finish_thread
                // (deadlock detection); guard it too.
                match catch_unwind(AssertUnwindSafe(|| self.finish_thread(tid))) {
                    Ok(()) => Some(v),
                    Err(_) => {
                        // The run is tearing down, but `v`'s destructor
                        // may itself perform model operations (e.g. a
                        // ring endpoint), which re-raise the abort —
                        // contain it so this wrapper still exits
                        // through the live-count bookkeeping.
                        let _ = catch_unwind(AssertUnwindSafe(move || drop(v)));
                        None
                    }
                }
            }
            Err(payload) => {
                if !payload.is::<ModelAbort>() {
                    let mut st = self.lock();
                    if st.failure.is_none() {
                        let message = panic_message(&*payload);
                        let path = st.explorer.path.iter().map(|d| d.chosen).collect();
                        st.failure = Some(Failure {
                            message,
                            payload: Some(payload),
                            path,
                        });
                    }
                    st.aborting = true;
                    self.cond.notify_all();
                }
                None
            }
        };
        drop(guard);
        out
    }

    fn finish_thread(&self, tid: usize) {
        let mut st = self.enter(tid);
        st.finished[tid] = true;
        st.runnable[tid] = false;
        st.final_clocks[tid] = st.clocks[tid];
        // Joiners parked on this thread become runnable again; their
        // join op re-checks `finished`.
        for t in 0..st.nthreads {
            if !st.finished[t] && !st.runnable[t] && st.join_waits[t] == Some(tid) {
                st.runnable[t] = true;
            }
        }
        self.record(&mut st, tid, KIND_FINISH, 0);
        self.leave(st);
    }

    /// Blocks (in model time) until `target` has finished, then joins
    /// its final clock (thread join is an acquire edge).
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        let mut st = self.enter(tid);
        if !st.finished[target] {
            st.runnable[tid] = false;
            st.join_waits[tid] = Some(target);
            self.select_next(&mut st);
            self.cond.notify_all();
            loop {
                if st.aborting {
                    drop(st);
                    std::panic::panic_any(ModelAbort);
                }
                if st.runnable[tid] && st.current == tid {
                    break;
                }
                st = unpoison(self.cond.wait(st));
            }
            st.join_waits[tid] = None;
        }
        let fc = st.final_clocks[target];
        join_clock(&mut st.clocks[tid], &fc);
        self.record(&mut st, tid, KIND_JOIN, target as u64);
        self.leave(st);
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

/// Outcome of a whole model check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Distinct executions run to completion (including pruned ones).
    pub schedules: u64,
    /// Executions abandoned because their state prefix had already been
    /// fully explored.
    pub pruned: u64,
    /// True when exploration stopped at `max_schedules` rather than
    /// exhausting the decision tree.
    pub truncated: bool,
}

/// A configured model checker. [`model`] runs one with defaults.
#[derive(Clone, Copy, Debug)]
pub struct Checker {
    /// Stop after this many executions (sets [`Report::truncated`]).
    pub max_schedules: u64,
    /// Fail an execution that runs more than this many shimmed ops.
    pub max_steps: u64,
    /// CHESS-style bound: how many times the scheduler may switch away
    /// from a thread that could have kept running. Exhaustive within
    /// the bound; raise it for deeper interleavings.
    pub preemption_bound: u32,
}

impl Default for Checker {
    fn default() -> Checker {
        Checker {
            max_schedules: 100_000,
            max_steps: 20_000,
            preemption_bound: 3,
        }
    }
}

static RUN_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Checker {
    /// Explores the closure's interleavings depth-first until the tree
    /// is exhausted or a bound trips. Panics (with a replayable
    /// decision trace on stderr) if any interleaving fails.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            cur_ctx().is_none(),
            "model() cannot be nested inside a model run"
        );
        let f = Arc::new(f);
        let mut explorer = Explorer::default();
        if let Ok(replay) = std::env::var("CALLIOPE_CHECK_REPLAY") {
            let choices: Vec<usize> = replay
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| s.trim().parse().expect("CALLIOPE_CHECK_REPLAY: bad entry"))
                .collect();
            explorer.path = choices
                .into_iter()
                .map(|c| Decision {
                    chosen: c,
                    total: c + 1,
                    key: 0,
                })
                .collect();
            explorer.replay = true;
        }
        let mut schedules = 0u64;
        let mut truncated = false;
        loop {
            schedules += 1;
            let run = Arc::new(Run {
                // relaxed: a fresh-id counter; nothing is ordered by it.
                id: RUN_IDS.fetch_add(1, Ordering::Relaxed),
                state: Mutex::new(RunState::new(
                    explorer,
                    self.preemption_bound,
                    self.max_steps,
                )),
                cond: Condvar::new(),
            });
            {
                let run0 = Arc::clone(&run);
                let f0 = Arc::clone(&f);
                // Thread 0 is a real OS thread too, so the checker can
                // supervise from outside the run.
                std::thread::spawn(move || run0.thread_main(0, move || f0()));
            }
            let mut st = run.lock();
            while st.live > 0 {
                st = unpoison(run.cond.wait(st));
            }
            explorer = std::mem::take(&mut st.explorer);
            let failure = st.failure.take();
            drop(st);
            if let Some(fail) = failure {
                let path: Vec<String> = fail.path.iter().map(|c| c.to_string()).collect();
                eprintln!(
                    "calliope-check: failing interleaving found after {schedules} schedule(s)\n\
                     calliope-check: {}\n\
                     calliope-check: replay with CALLIOPE_CHECK_REPLAY={}",
                    fail.message,
                    path.join(",")
                );
                match fail.payload {
                    Some(p) => resume_unwind(p),
                    None => panic!("{}", fail.message),
                }
            }
            if !explorer.backtrack() {
                break;
            }
            if schedules >= self.max_schedules {
                truncated = true;
                break;
            }
        }
        Report {
            schedules,
            pruned: explorer.pruned,
            truncated,
        }
    }
}

/// Model-checks the closure with the default [`Checker`].
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::default().check(f)
}
