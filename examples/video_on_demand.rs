//! Video-on-demand with VCR control and trick play.
//!
//! ```sh
//! cargo run --example video_on_demand
//! ```
//!
//! The paper's motivating application (§2.1): browse the catalog, play
//! a movie, and drive it with VCR commands — pause, resume, seek, fast
//! forward, fast backward. Trick modes play the offline-filtered files
//! an administrator produced and attached (§2.3.1): every 15th frame,
//! reversed for rewind.

use calliope::cluster::Cluster;
use calliope::content;
use calliope_types::{MediaTime, VcrCommand};
use std::time::Duration;

fn main() {
    let cluster = Cluster::builder().msus(1).build().expect("cluster start");

    // An administrator loads a movie plus its filtered FF/FB versions.
    let mut admin = cluster.client("admin", true).expect("admin session");
    println!("admin: recording \"feature\" with fast-forward/backward files…");
    content::upload_movie_with_trick(&mut admin, "feature", 6, 7).expect("upload");

    // A viewer arrives.
    let mut viewer = cluster.client("viewer", false).expect("session");
    println!("viewer: catalog:");
    for e in viewer.list_content().expect("toc") {
        println!("  {}  ({:.1}s)", e.name, e.duration_us as f64 / 1e6);
    }

    let port = viewer.open_port("settop", "mpeg1").expect("port");
    let mut play = viewer.play("feature", "settop", &[&port]).expect("play");
    let stream = play.streams[0];
    println!("viewer: playing; watching for 1 s…");
    std::thread::sleep(Duration::from_secs(1));
    println!("  received so far: {} packets", port.stats(stream).packets);

    println!("viewer: pause 500 ms");
    play.pause().expect("pause");
    std::thread::sleep(Duration::from_millis(500));

    println!("viewer: resume");
    play.resume().expect("resume");
    std::thread::sleep(Duration::from_millis(500));

    println!("viewer: fast forward (plays the filtered file at 15x content speed)");
    play.vcr(VcrCommand::FastForward).expect("ff");
    std::thread::sleep(Duration::from_millis(300));

    println!("viewer: back to normal speed");
    play.vcr(VcrCommand::Play).expect("normal");
    std::thread::sleep(Duration::from_millis(300));

    println!("viewer: rewind");
    play.vcr(VcrCommand::FastBackward).expect("fb");
    std::thread::sleep(Duration::from_millis(300));

    println!("viewer: seek to 5.0 s and let it finish");
    play.vcr(VcrCommand::Play).expect("normal");
    play.seek(MediaTime::from_millis(5_000)).expect("seek");
    let reason = play.wait_end(Duration::from_secs(30)).expect("end");
    println!(
        "viewer: ended ({reason:?}); {} packets total",
        port.stats(stream).packets
    );

    cluster.shutdown();
    println!("done.");
}
