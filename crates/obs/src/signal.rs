//! `SIGUSR1` → flight-recorder dump, without a libc crate.
//!
//! An operator can poke a running Calliope process with
//! `kill -USR1 <pid>` to get every registered flight recorder dumped
//! to stderr (and `CALLIOPE_FLIGHT_FILE`). std exposes no signal API,
//! but it links libc on Unix, so a one-function `extern "C"` binding
//! to `signal(2)` is all that is needed. The handler itself only sets
//! an `AtomicBool` — the single async-signal-safe thing it can do —
//! and a background watcher thread notices the flag and performs the
//! actual dump (which takes locks and writes files, neither of which
//! is legal inside a signal handler).
//!
//! On non-Unix targets this module compiles to a no-op.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;
use std::time::Duration;

/// Set by the signal handler, consumed by the watcher thread.
static SIGUSR1_PENDING: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use core::ffi::c_int;

    /// `SIGUSR1` on Linux and the BSDs (x86-64 and aarch64 agree).
    pub const SIGUSR1: c_int = if cfg!(target_os = "linux") { 10 } else { 30 };

    extern "C" {
        /// `signal(2)` from the libc std already links.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    /// The async-signal-safe handler: set a flag, nothing else.
    extern "C" fn on_sigusr1(_sig: c_int) {
        super::SIGUSR1_PENDING.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is a plain libc call; the handler passed is a
        // valid `extern "C" fn(c_int)` for the whole program's lifetime
        // and touches only a static atomic, which is async-signal-safe.
        unsafe {
            signal(SIGUSR1, on_sigusr1 as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {}
}

/// Installs the `SIGUSR1` handler and starts the watcher thread that
/// dumps all registered flight recorders when the signal arrives.
/// Idempotent; called automatically by [`crate::flight::register`].
pub fn install_sigusr1_watcher() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        sys::install();
        std::thread::Builder::new()
            .name("flight-sigusr1".into())
            .spawn(|| loop {
                std::thread::sleep(Duration::from_millis(100));
                if SIGUSR1_PENDING.swap(false, Ordering::SeqCst) {
                    crate::flight::dump_all("SIGUSR1");
                }
            })
            .expect("spawn sigusr1 watcher");
    });
}
