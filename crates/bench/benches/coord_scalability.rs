//! E6 — §3.3: Coordinator scalability with fake MSUs.
//!
//! "We start two of these MSUs … and started two clients who together
//! sent 10,000 requests to the coordinator at a rate of about 60
//! requests per second. We measured the Coordinator's CPU utilization
//! at 14% and the network utilization at 6%."
//!
//! This bench runs the *real* Coordinator with real fake MSUs over
//! loopback TCP, then projects the 1996 figures with the calibrated
//! analytic model (a 2026 host measures far lower utilization than a
//! 66 MHz Pentium did, so both views are reported).

use calliope_bench::banner;
use calliope_coord::fake_msu::FakeMsu;
use calliope_coord::{CoordConfig, CoordServer};
use calliope_sim::coord_model::CoordModel;
use calliope_types::wire::messages::{ClientRequest, CoordReply};
use calliope_types::wire::{read_frame, write_frame};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn main() {
    banner("E6", "Coordinator and intra-server network load", "§3.3");

    // --- The real experiment, scaled in duration (not in rate). -----
    let total_requests: usize = if calliope_bench::quick() { 300 } else { 1800 };
    let target_rate = 60.0; // requests/second, as in the paper
    println!("running the real Coordinator + 2 fake MSUs (50 ms delay), 4 client sessions,");
    println!(
        "{total_requests} requests at ~{target_rate:.0} req/s (the paper sent 10,000 at the same rate)…"
    );

    let coord = CoordServer::start(CoordConfig::default()).expect("coordinator");
    let _m1 = FakeMsu::start(coord.msu_addr, 2, Duration::from_millis(50)).expect("fake msu 1");
    let _m2 = FakeMsu::start(coord.msu_addr, 2, Duration::from_millis(50)).expect("fake msu 2");
    while coord.msu_count() < 2 {
        std::thread::sleep(Duration::from_millis(10));
    }
    coord.stats().reset();

    // The paper's two clients evidently pipelined; our client API is
    // synchronous (each request waits out the fake MSU's 50 ms), so four
    // sessions offer the same aggregate 60 req/s.
    const WORKERS: usize = 4;
    let per_client = total_requests / WORKERS;
    let addr = coord.client_addr;
    let started = Instant::now();
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("client connect");
                write_frame(
                    &mut conn,
                    &ClientRequest::Hello {
                        client_name: format!("load-{w}"),
                        admin: false,
                    },
                )
                .expect("hello");
                let _: Option<CoordReply> = read_frame(&mut conn).expect("welcome");
                write_frame(
                    &mut conn,
                    &ClientRequest::RegisterPort {
                        name: "p".into(),
                        type_name: "mpeg1".into(),
                        data_addr: "127.0.0.1:5000".parse().expect("addr"),
                        ctrl_addr: "127.0.0.1:5001".parse().expect("addr"),
                    },
                )
                .expect("register");
                let _: Option<CoordReply> = read_frame(&mut conn).expect("ok");
                // Each worker offers its share of the 60 req/s: schedule
                // + immediate termination per request, like the paper's
                // fake load.
                let interval = Duration::from_secs_f64(WORKERS as f64 / target_rate);
                let t0 = Instant::now();
                for i in 0..per_client {
                    let due = interval * i as u32;
                    let elapsed = t0.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                    write_frame(
                        &mut conn,
                        &ClientRequest::Record {
                            content: format!("c-{w}-{i}"),
                            port: "p".into(),
                            type_name: "mpeg1".into(),
                            est_secs: 1,
                        },
                    )
                    .expect("request");
                    loop {
                        let r: Option<CoordReply> = read_frame(&mut conn).expect("reply");
                        match r.expect("open") {
                            CoordReply::Queued => continue,
                            CoordReply::RecordStarted { .. } => break,
                            other => panic!("unexpected reply: {other:?}"),
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client worker");
    }
    let elapsed = started.elapsed();
    // Let the trailing StreamDones drain.
    std::thread::sleep(Duration::from_millis(300));

    let s = coord.stats();
    println!();
    println!("measured on this host:");
    println!("  requests processed : {}", s.requests());
    println!(
        "  offered rate       : {:.1} req/s",
        total_requests as f64 / elapsed.as_secs_f64()
    );
    println!("  streams started    : {}", s.streams_started());
    println!("  streams terminated : {}", s.streams_done());
    println!("  Coordinator CPU    : {:.2}%", s.cpu_utilization() * 100.0);
    println!(
        "  intra-server net   : {:.2}% of 10 Mbit/s",
        s.network_utilization() * 100.0
    );
    println!("  (paper, on a 66 MHz Pentium: CPU 14%, network 6%)");

    // --- The paper's projection, from the calibrated model. ---------
    let model = CoordModel::default();
    println!();
    println!("calibrated 1996 model (per-request cost from the paper's measurement):");
    for rate in [60.0, 50.0, 100.0, 200.0, 400.0] {
        let l = model.at_rate(rate);
        println!(
            "  {:>5.0} req/s → CPU {:>5.1}%  net {:>4.1}%  mean latency {:>6.2} ms",
            rate,
            l.cpu * 100.0,
            l.network * 100.0,
            l.mean_latency_ms
        );
    }
    println!();
    let rate = model.installation_rate(150, 20, 60.0);
    let l = model.at_rate(rate);
    println!("paper's target installation: 150 MSUs × 20 streams, 1-minute sessions");
    println!(
        "  ⇒ {rate:.0} req/s ⇒ CPU {:.1}%, network {:.1}% — \"relatively insignificant loads\"",
        l.cpu * 100.0,
        l.network * 100.0
    );
    println!(
        "  one Coordinator saturates near {:.0} req/s ≈ {} MSUs at that session length",
        model.max_rate(1.0),
        model.max_msus(20, 60.0, 1.0)
    );

    coord.shutdown();
}
