//! Playback pacing: mapping media offsets to wall-clock deadlines.
//!
//! A stream's delivery schedule stores offsets from the beginning of
//! the recording (paper §2.2.1). The network process must turn those
//! into wall-clock send times, surviving pauses, seeks, and trick-mode
//! switches. [`Pacer`] owns that mapping: a *base* instant at which a
//! known media position played, updated on every VCR action.
//!
//! All methods take `now` explicitly so tests can drive time by hand.

use calliope_types::time::MediaTime;
use std::time::{Duration, Instant};

/// Maps media offsets to wall-clock deadlines for one stream.
#[derive(Clone, Debug)]
pub struct Pacer {
    /// Wall instant at which media position `origin` plays (None until
    /// started).
    base: Option<Instant>,
    /// Media position corresponding to `base`.
    origin: MediaTime,
    /// Frozen position while paused.
    paused_at: Option<MediaTime>,
}

impl Pacer {
    /// Creates a pacer that has not started.
    pub fn new() -> Pacer {
        Pacer {
            base: None,
            origin: MediaTime::ZERO,
            paused_at: None,
        }
    }

    /// True once `start` (or a rebase) has run and playback is not
    /// paused.
    pub fn is_playing(&self) -> bool {
        self.base.is_some() && self.paused_at.is_none()
    }

    /// True while paused.
    pub fn is_paused(&self) -> bool {
        self.paused_at.is_some()
    }

    /// True once playback has begun at all (playing or paused).
    pub fn is_started(&self) -> bool {
        self.base.is_some() || self.paused_at.is_some()
    }

    /// Begins playback at media position zero.
    pub fn start(&mut self, now: Instant) {
        self.base = Some(now);
        self.origin = MediaTime::ZERO;
        self.paused_at = None;
    }

    /// Rebases so that media position `pos` plays at `now` — used by
    /// seeks and trick-mode file switches. Clears any pause.
    pub fn rebase(&mut self, now: Instant, pos: MediaTime) {
        self.base = Some(now);
        self.origin = pos;
        self.paused_at = None;
    }

    /// The media position playing at `now` (the frozen position while
    /// paused; zero before start).
    pub fn position(&self, now: Instant) -> MediaTime {
        if let Some(p) = self.paused_at {
            return p;
        }
        match self.base {
            None => MediaTime::ZERO,
            Some(base) => {
                let elapsed = now.saturating_duration_since(base);
                self.origin + MediaTime(elapsed.as_micros() as u64)
            }
        }
    }

    /// Freezes playback at the current position.
    pub fn pause(&mut self, now: Instant) {
        if self.paused_at.is_none() {
            self.paused_at = Some(self.position(now));
        }
    }

    /// Resumes from a pause; positions after `resume` continue where
    /// `pause` froze them.
    pub fn resume(&mut self, now: Instant) {
        if let Some(p) = self.paused_at.take() {
            self.base = Some(now);
            self.origin = p;
        }
    }

    /// Wall-clock deadline for the packet at media offset `offset`.
    ///
    /// Returns `None` while paused or before start (no packet is due).
    /// Offsets before the base position are due immediately (`base`).
    pub fn deadline(&self, offset: MediaTime) -> Option<Instant> {
        if self.paused_at.is_some() {
            return None;
        }
        let base = self.base?;
        let ahead = offset.saturating_sub(self.origin);
        Some(base + Duration::from_micros(ahead.as_micros()))
    }

    /// Whether the packet at `offset` is due at `now`.
    pub fn is_due(&self, offset: MediaTime, now: Instant) -> bool {
        matches!(self.deadline(offset), Some(d) if d <= now)
    }
}

impl Default for Pacer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn not_started_nothing_is_due() {
        let p = Pacer::new();
        assert!(!p.is_playing());
        assert_eq!(p.deadline(MediaTime::ZERO), None);
        assert_eq!(p.position(t0()), MediaTime::ZERO);
    }

    #[test]
    fn position_advances_with_wall_clock() {
        let base = t0();
        let mut p = Pacer::new();
        p.start(base);
        assert!(p.is_playing());
        assert_eq!(p.position(base), MediaTime::ZERO);
        assert_eq!(p.position(base + ms(1500)), MediaTime::from_millis(1500));
    }

    #[test]
    fn deadlines_track_offsets() {
        let base = t0();
        let mut p = Pacer::new();
        p.start(base);
        let d = p.deadline(MediaTime::from_millis(40)).unwrap();
        assert_eq!(d, base + ms(40));
        assert!(!p.is_due(MediaTime::from_millis(40), base + ms(39)));
        assert!(p.is_due(MediaTime::from_millis(40), base + ms(40)));
        assert!(p.is_due(MediaTime::from_millis(40), base + ms(41)));
    }

    #[test]
    fn pause_freezes_and_resume_shifts_deadlines() {
        let base = t0();
        let mut p = Pacer::new();
        p.start(base);
        p.pause(base + ms(100));
        assert!(p.is_paused());
        assert_eq!(p.position(base + ms(500)), MediaTime::from_millis(100));
        assert_eq!(p.deadline(MediaTime::from_millis(120)), None);
        // Resume 400 ms later: the 120 ms packet is now due 20 ms after
        // resume.
        p.resume(base + ms(500));
        assert!(p.is_playing());
        let d = p.deadline(MediaTime::from_millis(120)).unwrap();
        assert_eq!(d, base + ms(520));
        // Double pause/resume are idempotent.
        p.resume(base + ms(600));
        assert_eq!(
            p.deadline(MediaTime::from_millis(120)).unwrap(),
            base + ms(520)
        );
    }

    #[test]
    fn seek_rebases_position_and_deadlines() {
        let base = t0();
        let mut p = Pacer::new();
        p.start(base);
        // Seek to 60 s at wall time +5 s.
        p.rebase(base + ms(5_000), MediaTime::from_secs(60));
        assert_eq!(p.position(base + ms(5_000)), MediaTime::from_secs(60));
        assert_eq!(
            p.position(base + ms(6_000)),
            MediaTime::from_secs(60) + MediaTime::from_secs(1)
        );
        // A packet before the seek point is due immediately.
        let d = p.deadline(MediaTime::from_secs(30)).unwrap();
        assert_eq!(d, base + ms(5_000));
        // A packet after it keeps its relative spacing.
        let d = p.deadline(MediaTime::from_secs(61)).unwrap();
        assert_eq!(d, base + ms(6_000));
    }

    #[test]
    fn rebase_clears_pause() {
        let base = t0();
        let mut p = Pacer::new();
        p.start(base);
        p.pause(base + ms(10));
        p.rebase(base + ms(20), MediaTime::from_secs(9));
        assert!(p.is_playing());
        assert_eq!(p.position(base + ms(20)), MediaTime::from_secs(9));
    }

    #[test]
    fn pause_twice_keeps_first_freeze_point() {
        let base = t0();
        let mut p = Pacer::new();
        p.start(base);
        p.pause(base + ms(100));
        p.pause(base + ms(300));
        assert_eq!(p.position(base + ms(300)), MediaTime::from_millis(100));
    }
}
