//! An always-on, lock-free flight recorder.
//!
//! Every component keeps a fixed-size ring of compact binary events —
//! timestamp, trace id, event code, two argument words — written from
//! hot paths with relaxed atomics and *no* allocation, locks, or
//! syscalls. The ring is normally invisible; it is dumped to stderr
//! (and to `CALLIOPE_FLIGHT_FILE` when set) only when something goes
//! wrong: an MSU failure, a stream I/O error, a panic, or a `SIGUSR1`
//! poke from an operator. Like an aircraft flight recorder, the cost
//! of writing is paid always so the evidence exists when a crash needs
//! an autopsy.
//!
//! # Ring protocol
//!
//! The ring is multi-producer single-consumer and *overwriting*: when
//! it is full, new events replace the oldest ones (a counter of
//! overwritten events is kept — `obs.flight_dropped` in the metrics
//! glossary). The model checker's atomics shim has no
//! `compare_exchange`, so the ring is built from `fetch_add` ticket
//! claiming plus a per-slot sequence word:
//!
//! * A writer claims ticket `t` with `head.fetch_add(1)` and owns slot
//!   `t % capacity`. It stores `2t+1` (odd: in progress) into the
//!   slot's `seq`, writes the payload words, stores an XOR checksum
//!   keyed on `2t+2`, then stores `2t+2` (even: complete).
//! * The dumper reads `seq`, skips empty (0) or in-progress (odd)
//!   slots, reads the payload, re-reads `seq`, and accepts the event
//!   only if `seq` was stable *and* the checksum matches. Two writers
//!   lapping each other on the same slot can interleave their payload
//!   words, but such a torn slot cannot produce a matching checksum
//!   for either ticket, so it is discarded rather than misreported.
//!
//! The protocol is modeled under `calliope-check`
//! (`tests/model_flight.rs`).

use crate::metrics::Counter;
use calliope_check::sync::atomic::{AtomicU64, Ordering};
use std::io::{self, Write};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

/// Default ring capacity (events) when `CALLIOPE_FLIGHT_EVENTS` is not
/// set. 4096 events × 56 bytes ≈ 224 KiB per component.
pub const DEFAULT_FLIGHT_EVENTS: usize = 4096;

/// Environment variable overriding the per-component ring capacity.
pub const FLIGHT_EVENTS_ENV: &str = "CALLIOPE_FLIGHT_EVENTS";

/// Environment variable naming a file that dumps are appended to (in
/// addition to stderr).
pub const FLIGHT_FILE_ENV: &str = "CALLIOPE_FLIGHT_FILE";

/// What happened, in one word. Codes are stable u64s so they survive
/// the binary ring; `arg0`/`arg1` meanings are per code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum FlightCode {
    /// A play/record request was admitted. arg0 = group id, arg1 =
    /// stream count.
    Admit = 1,
    /// A stream grant was sent to (Coordinator) or accepted by (MSU)
    /// an MSU. arg0 = stream id, arg1 = disk id.
    Schedule = 2,
    /// A stream group released and started sending. arg0 = group id,
    /// arg1 = stream count.
    GroupReady = 3,
    /// A stream ended. arg0 = stream id, arg1 = done-reason tag.
    StreamDone = 4,
    /// A stream hit a disk I/O error. arg0 = stream id, arg1 = disk id.
    IoError = 5,
    /// An MSU was declared failed. arg0 = MSU id, arg1 = grants reaped.
    FailMsu = 6,
    /// A stream was re-admitted on a replica. arg0 = stream id, arg1 =
    /// replacement disk id.
    Failover = 7,
    /// A heartbeat went unanswered. arg0 = MSU id, arg1 = consecutive
    /// misses.
    HeartbeatMiss = 8,
    /// A heartbeat-piggybacked stats snapshot was merged into the
    /// cluster view. arg0 = MSU id, arg1 = metric count.
    SnapshotMerged = 9,
    /// A stream grant was cancelled. arg0 = stream id.
    Cancel = 10,
    /// A VCR command was applied. arg0 = group id, arg1 = command tag.
    Vcr = 11,
    /// A send deadline was missed. arg0 = stream id, arg1 = lateness µs.
    DeadlineMiss = 12,
}

impl FlightCode {
    fn from_u64(v: u64) -> Option<FlightCode> {
        Some(match v {
            1 => FlightCode::Admit,
            2 => FlightCode::Schedule,
            3 => FlightCode::GroupReady,
            4 => FlightCode::StreamDone,
            5 => FlightCode::IoError,
            6 => FlightCode::FailMsu,
            7 => FlightCode::Failover,
            8 => FlightCode::HeartbeatMiss,
            9 => FlightCode::SnapshotMerged,
            10 => FlightCode::Cancel,
            11 => FlightCode::Vcr,
            12 => FlightCode::DeadlineMiss,
            _ => return None,
        })
    }

    /// Short lower-case name used in dump lines.
    pub fn name(self) -> &'static str {
        match self {
            FlightCode::Admit => "admit",
            FlightCode::Schedule => "schedule",
            FlightCode::GroupReady => "group_ready",
            FlightCode::StreamDone => "stream_done",
            FlightCode::IoError => "io_error",
            FlightCode::FailMsu => "fail_msu",
            FlightCode::Failover => "failover",
            FlightCode::HeartbeatMiss => "heartbeat_miss",
            FlightCode::SnapshotMerged => "snapshot_merged",
            FlightCode::Cancel => "cancel",
            FlightCode::Vcr => "vcr",
            FlightCode::DeadlineMiss => "deadline_miss",
        }
    }
}

/// One ring slot: a sequence word framing the payload, plus a checksum
/// that detects payload words from two different tickets.
#[derive(Debug)]
struct Slot {
    /// 0 = never written; `2t+1` = ticket `t` in progress; `2t+2` =
    /// ticket `t` complete.
    seq: AtomicU64,
    ts_us: AtomicU64,
    trace: AtomicU64,
    code: AtomicU64,
    arg0: AtomicU64,
    arg1: AtomicU64,
    checksum: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts_us: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            code: AtomicU64::new(0),
            arg0: AtomicU64::new(0),
            arg1: AtomicU64::new(0),
            checksum: AtomicU64::new(0),
        }
    }
}

fn checksum(done_seq: u64, ts: u64, trace: u64, code: u64, arg0: u64, arg1: u64) -> u64 {
    done_seq
        ^ ts.rotate_left(8)
        ^ trace.rotate_left(16)
        ^ code.rotate_left(24)
        ^ arg0.rotate_left(32)
        ^ arg1.rotate_left(40)
}

/// A decoded event pulled out of the ring by [`FlightRecorder::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEventRecord {
    /// Global write ticket; orders events across the whole ring.
    pub ticket: u64,
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// Trace id (0 = untraced).
    pub trace: u64,
    /// What happened.
    pub code: FlightCode,
    /// First argument word (meaning per code).
    pub arg0: u64,
    /// Second argument word.
    pub arg1: u64,
}

/// The per-component event ring. Cheap enough to write on every
/// control-plane action; see the module docs for the protocol.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
    overwritten: AtomicU64,
    dropped_counter: Option<Arc<Counter>>,
    t0: Instant,
}

impl FlightRecorder {
    /// A ring holding `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
            dropped_counter: None,
            t0: Instant::now(),
        }
    }

    /// A ring sized from `CALLIOPE_FLIGHT_EVENTS` (default
    /// [`DEFAULT_FLIGHT_EVENTS`]).
    pub fn from_env() -> FlightRecorder {
        let cap = std::env::var(FLIGHT_EVENTS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_FLIGHT_EVENTS);
        FlightRecorder::new(cap)
    }

    /// Mirrors the overwritten-event count into a registry counter
    /// (conventionally named `obs.flight_dropped`).
    pub fn with_dropped_counter(mut self, counter: Arc<Counter>) -> FlightRecorder {
        self.dropped_counter = Some(counter);
        self
    }

    /// Number of events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events overwritten before anyone could read them.
    pub fn dropped(&self) -> u64 {
        // relaxed: a statistic; readers tolerate staleness.
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Records one event. Allocation-free, lock-free, and wait-free up
    /// to the atomics themselves; safe from any thread.
    #[inline]
    pub fn record(&self, trace: u64, code: FlightCode, arg0: u64, arg1: u64) {
        // relaxed: the ticket only needs to be unique; the slot's seq
        // word (release/acquire) does the publication.
        let t = self.head.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        if t >= cap {
            // relaxed: a statistic (see `dropped`).
            self.overwritten.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = &self.dropped_counter {
                c.inc();
            }
        }
        let slot = &self.slots[(t % cap) as usize];
        let in_progress = 2 * t + 1;
        let done = 2 * t + 2;
        slot.seq.store(in_progress, Ordering::Release);
        let ts = self.t0.elapsed().as_micros() as u64;
        let code = code as u64;
        // relaxed: payload words are framed by the two `seq` stores and
        // validated by the checksum at read time; a torn mix of two
        // tickets' words fails the checksum and is discarded.
        slot.ts_us.store(ts, Ordering::Relaxed);
        // relaxed: see above.
        slot.trace.store(trace, Ordering::Relaxed);
        // relaxed: see above.
        slot.code.store(code, Ordering::Relaxed);
        // relaxed: see above.
        slot.arg0.store(arg0, Ordering::Relaxed);
        // relaxed: see above.
        slot.arg1.store(arg1, Ordering::Relaxed);
        // relaxed: see above.
        slot.checksum.store(
            checksum(done, ts, trace, code, arg0, arg1),
            Ordering::Relaxed,
        );
        slot.seq.store(done, Ordering::Release);
    }

    /// Reads every valid event out of the ring, oldest first. Events
    /// concurrently being overwritten are skipped, never misreported.
    pub fn snapshot(&self) -> Vec<FlightEventRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // empty or mid-write
            }
            // relaxed: validated below — the seq re-read plus checksum
            // reject any slot a lapping writer touched meanwhile.
            let ts = slot.ts_us.load(Ordering::Relaxed);
            // relaxed: see above.
            let trace = slot.trace.load(Ordering::Relaxed);
            // relaxed: see above.
            let code = slot.code.load(Ordering::Relaxed);
            // relaxed: see above.
            let arg0 = slot.arg0.load(Ordering::Relaxed);
            // relaxed: see above.
            let arg1 = slot.arg1.load(Ordering::Relaxed);
            // relaxed: see above.
            let sum = slot.checksum.load(Ordering::Relaxed);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s2 != s1 || sum != checksum(s1, ts, trace, code, arg0, arg1) {
                continue; // torn by a lapping writer
            }
            let Some(code) = FlightCode::from_u64(code) else {
                continue;
            };
            out.push(FlightEventRecord {
                ticket: s1 / 2 - 1,
                ts_us: ts,
                trace,
                code,
                arg0,
                arg1,
            });
        }
        out.sort_by_key(|e| e.ticket);
        out
    }

    /// Writes a human-readable dump of the ring to `w`.
    pub fn dump_to<W: Write>(&self, name: &str, reason: &str, w: &mut W) -> io::Result<()> {
        let events = self.snapshot();
        writeln!(
            w,
            "=== flight recorder: {name} ({reason}; {} events, {} overwritten) ===",
            events.len(),
            self.dropped()
        )?;
        for e in &events {
            writeln!(
                w,
                "[{:>12}us] t{:016x} {:<14} arg0={} arg1={}",
                e.ts_us,
                e.trace,
                e.code.name(),
                e.arg0,
                e.arg1
            )?;
        }
        writeln!(w, "=== end flight recorder: {name} ===")
    }

    /// Dumps to stderr, and appends to `CALLIOPE_FLIGHT_FILE` if set.
    pub fn dump(&self, name: &str, reason: &str) {
        let mut buf = Vec::with_capacity(4096);
        if self.dump_to(name, reason, &mut buf).is_ok() {
            let _ = io::stderr().write_all(&buf);
            if let Ok(path) = std::env::var(FLIGHT_FILE_ENV) {
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    let _ = f.write_all(&buf);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Process-wide recorder registry: panic hook and SIGUSR1 dump every
// component's ring, not just the one that noticed trouble.
// ---------------------------------------------------------------------

type RegistryEntries = Vec<(String, Arc<FlightRecorder>)>;

fn registry() -> &'static Mutex<RegistryEntries> {
    static REGISTRY: OnceLock<Mutex<RegistryEntries>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a recorder under a component name so panic/SIGUSR1 dumps
/// include it. Also installs the process-wide panic hook and SIGUSR1
/// watcher on first use.
pub fn register(name: &str, rec: Arc<FlightRecorder>) {
    registry().lock().unwrap().push((name.to_owned(), rec));
    install_panic_hook();
    crate::signal::install_sigusr1_watcher();
}

/// Removes every recorder registered under `name` (component
/// shutdown; tests reuse names).
pub fn unregister(name: &str) {
    registry().lock().unwrap().retain(|(n, _)| n != name);
}

/// Dumps every registered recorder to stderr (and the flight file).
pub fn dump_all(reason: &str) {
    let recs: Vec<(String, Arc<FlightRecorder>)> = registry().lock().unwrap().clone();
    for (name, rec) in recs {
        rec.dump(&name, reason);
    }
}

/// Installs a panic hook that dumps all registered recorders before
/// delegating to the previous hook. Idempotent.
pub fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_all("panic");
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_order_with_payloads_intact() {
        let rec = FlightRecorder::new(8);
        rec.record(0x11, FlightCode::Admit, 1, 2);
        rec.record(0x11, FlightCode::Schedule, 3, 4);
        rec.record(0x22, FlightCode::StreamDone, 5, 0);
        let events = rec.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].code, FlightCode::Admit);
        assert_eq!(events[0].trace, 0x11);
        assert_eq!(events[0].arg0, 1);
        assert_eq!(events[1].code, FlightCode::Schedule);
        assert_eq!(events[2].trace, 0x22);
        assert!(events.windows(2).all(|w| w[0].ticket < w[1].ticket));
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn the_ring_overwrites_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(i, FlightCode::Vcr, i, 0);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        // The newest four survive.
        let traces: Vec<u64> = events.iter().map(|e| e.trace).collect();
        assert_eq!(traces, [6, 7, 8, 9]);
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn dropped_counter_mirrors_overwrites() {
        let reg = crate::Registry::new();
        let c = reg.counter("obs.flight_dropped");
        let rec = FlightRecorder::new(2).with_dropped_counter(c.clone());
        for _ in 0..5 {
            rec.record(0, FlightCode::Admit, 0, 0);
        }
        assert_eq!(c.get(), 3);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        let rec = Arc::new(FlightRecorder::new(16));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    // Each writer's events have a self-consistent
                    // payload: trace == arg0 == arg1.
                    for i in 0..1000 {
                        let v = t * 10_000 + i;
                        rec.record(v, FlightCode::DeadlineMiss, v, v);
                    }
                })
            })
            .collect();
        // Snapshot continuously while writers lap the ring.
        for _ in 0..50 {
            for e in rec.snapshot() {
                assert_eq!(e.trace, e.arg0, "torn event surfaced");
                assert_eq!(e.trace, e.arg1, "torn event surfaced");
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 16, "quiescent full ring is fully valid");
        assert_eq!(rec.dropped(), 4000 - 16);
    }

    #[test]
    fn dump_renders_every_event() {
        let rec = FlightRecorder::new(4);
        rec.record(7, FlightCode::FailMsu, 1, 2);
        let mut out = Vec::new();
        rec.dump_to("coord", "test", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("flight recorder: coord"));
        assert!(text.contains("t0000000000000007"));
        assert!(text.contains("fail_msu"));
    }

    #[test]
    fn env_capacity_is_respected() {
        // Not using from_env here (tests run in parallel; the env is
        // process-global) — just the explicit constructor floor.
        assert_eq!(FlightRecorder::new(0).capacity(), 1);
        assert_eq!(FlightRecorder::new(64).capacity(), 64);
    }

    #[test]
    fn registry_register_dump_unregister() {
        let rec = Arc::new(FlightRecorder::new(4));
        rec.record(1, FlightCode::Admit, 0, 0);
        register("test-component", rec.clone());
        dump_all("unit test");
        unregister("test-component");
        dump_all("unit test again"); // no longer includes it; must not panic
    }
}
