//! Whole-installation bring-up.
//!
//! [`Cluster`] starts a Coordinator and N MSUs on loopback with
//! file-backed disks under a scratch directory — the paper's Figure 1
//! topology in one process. Tests, examples, and benchmarks all build
//! on it.

use calliope_client::CalliopeClient;
use calliope_coord::{CoordConfig, CoordServer};
use calliope_msu::config::{DiskSpec, MsuConfig};
use calliope_msu::MsuServer;
use calliope_storage::{FaultControl, FaultPlan};
use calliope_types::error::Result;
use calliope_types::MsuId;
use std::net::{IpAddr, Ipv4Addr};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Builder for a [`Cluster`].
pub struct ClusterBuilder {
    msus: usize,
    disks_per_msu: usize,
    disk_blocks: u64,
    net_tick: Duration,
    data_dir: Option<PathBuf>,
    fault_plans: Vec<(usize, usize, FaultPlan)>,
    heartbeat_interval: Duration,
    heartbeat_misses: u32,
}

impl ClusterBuilder {
    /// Number of MSUs (default 1).
    pub fn msus(mut self, n: usize) -> Self {
        self.msus = n;
        self
    }

    /// Disks per MSU (default 2, like the paper's test machine).
    pub fn disks_per_msu(mut self, n: usize) -> Self {
        self.disks_per_msu = n;
        self
    }

    /// Blocks (256 KB each) per disk (default 64 = 16 MB, sparse).
    pub fn disk_blocks(mut self, n: u64) -> Self {
        self.disk_blocks = n;
        self
    }

    /// Network-process timer granularity (default: the paper's 10 ms).
    pub fn net_tick(mut self, tick: Duration) -> Self {
        self.net_tick = tick;
        self
    }

    /// Where disk images live (default: a fresh scratch directory).
    pub fn data_dir(mut self, dir: PathBuf) -> Self {
        self.data_dir = Some(dir);
        self
    }

    /// Arms fault injection on one disk: `msu`/`disk` are start-order
    /// indices. An all-defaults [`FaultPlan`] injects nothing but still
    /// enables the runtime kill switch ([`Cluster::fail_disk`]).
    pub fn fault(mut self, msu: usize, disk: usize, plan: FaultPlan) -> Self {
        self.fault_plans.push((msu, disk, plan));
        self
    }

    /// Tunes the Coordinator's heartbeat monitor (`Duration::ZERO`
    /// disables it; the default is the Coordinator's own default).
    pub fn heartbeat(mut self, interval: Duration, misses: u32) -> Self {
        self.heartbeat_interval = interval;
        self.heartbeat_misses = misses;
        self
    }

    /// Starts everything.
    pub fn build(self) -> Result<Cluster> {
        let bind_ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let data_dir = self.data_dir.unwrap_or_else(scratch_dir);
        std::fs::create_dir_all(&data_dir)?;
        let coord = CoordServer::start(CoordConfig {
            bind_ip,
            client_port: 0,
            msu_port: 0,
            heartbeat_interval: self.heartbeat_interval,
            heartbeat_misses: self.heartbeat_misses,
        })?;
        let mut msus = Vec::new();
        for i in 0..self.msus {
            let cfg = MsuConfig {
                coordinator: coord.msu_addr,
                data_dir: data_dir.join(format!("msu{i}")),
                disks: (0..self.disks_per_msu)
                    .map(|d| DiskSpec {
                        blocks: self.disk_blocks,
                        fault: self
                            .fault_plans
                            .iter()
                            .find(|(m, k, _)| *m == i && *k == d)
                            .map(|(_, _, plan)| plan.clone()),
                    })
                    .collect(),
                bind_ip,
                net_tick: self.net_tick,
                previous_id: None,
            };
            msus.push(MsuServer::start(cfg)?);
        }
        Ok(Cluster {
            coord,
            msus,
            data_dir,
            bind_ip,
            disk_blocks: self.disk_blocks,
            disks_per_msu: self.disks_per_msu,
            net_tick: self.net_tick,
        })
    }
}

fn scratch_dir() -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    // relaxed: a fresh-id counter for scratch directory names.
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("calliope-cluster-{}-{n}", std::process::id()))
}

/// A running installation: one Coordinator plus its MSUs.
pub struct Cluster {
    /// The Coordinator.
    pub coord: CoordServer,
    /// The MSUs, in start order.
    pub msus: Vec<MsuServer>,
    data_dir: PathBuf,
    bind_ip: IpAddr,
    disk_blocks: u64,
    disks_per_msu: usize,
    net_tick: Duration,
}

impl Cluster {
    /// Starts building a cluster.
    pub fn builder() -> ClusterBuilder {
        let coord_defaults = CoordConfig::default();
        ClusterBuilder {
            msus: 1,
            disks_per_msu: 2,
            disk_blocks: 64,
            net_tick: Duration::from_millis(10),
            data_dir: None,
            fault_plans: Vec::new(),
            heartbeat_interval: coord_defaults.heartbeat_interval,
            heartbeat_misses: coord_defaults.heartbeat_misses,
        }
    }

    /// Opens a client session against this cluster's Coordinator.
    pub fn client(&self, name: &str, admin: bool) -> Result<CalliopeClient> {
        CalliopeClient::connect(self.coord.client_addr, self.bind_ip, name, admin)
    }

    /// Stops MSU `i` (taking it out of the vector), simulating a crash.
    /// Returns its identity for a later [`Cluster::restart_msu`].
    pub fn kill_msu(&mut self, i: usize) -> MsuId {
        let msu = self.msus.remove(i);
        let id = msu.id();
        msu.shutdown();
        id
    }

    /// Crashes MSU `i` abruptly: no `GroupEnded`, no `StreamDone` — the
    /// Coordinator and the clients both discover the death the hard
    /// way. Returns the identity for [`Cluster::restart_msu`].
    pub fn crash_msu(&mut self, i: usize) -> MsuId {
        let msu = self.msus.remove(i);
        let id = msu.id();
        msu.crash();
        id
    }

    /// Chaos: wedges MSU `i`'s Coordinator control loop (TCP stays
    /// open, nothing is answered). Only the heartbeat can notice.
    pub fn wedge_msu(&self, i: usize) {
        self.msus[i].wedge_control();
    }

    /// Chaos: MSU `i` silently drops all outgoing media packets.
    pub fn blackhole_msu(&self, i: usize) {
        self.msus[i].blackhole_udp();
    }

    /// Chaos: severs MSU `i`'s Coordinator connection; the MSU keeps
    /// serving and re-registers under its previous identity (§2.2).
    pub fn drop_msu_coord_conn(&self, i: usize) {
        self.msus[i].drop_coord_conn();
    }

    /// Kills one fault-armed disk at runtime (every subsequent transfer
    /// errors). Returns the control handle, or `None` if that disk was
    /// built without a [`FaultPlan`].
    pub fn fail_disk(&self, msu: usize, disk: usize) -> Option<Arc<FaultControl>> {
        let ctl = self.msus[msu].fault_control(disk)?;
        ctl.kill();
        Some(ctl)
    }

    /// Restarts a previously killed MSU from its on-disk state,
    /// re-registering under its previous identity (paper §2.2).
    pub fn restart_msu(&mut self, i: usize, previous: MsuId) -> Result<()> {
        let cfg = MsuConfig {
            coordinator: self.coord.msu_addr,
            data_dir: self.data_dir.join(format!("msu{i}")),
            // A restarted MSU comes back with healthy disks.
            disks: (0..self.disks_per_msu)
                .map(|_| DiskSpec::healthy(self.disk_blocks))
                .collect(),
            bind_ip: self.bind_ip,
            net_tick: self.net_tick,
            previous_id: Some(previous),
        };
        self.msus.push(MsuServer::start(cfg)?);
        Ok(())
    }

    /// The scratch directory holding the disk images.
    pub fn data_dir(&self) -> &PathBuf {
        &self.data_dir
    }

    /// Orderly shutdown of every component; removes the scratch
    /// directory.
    pub fn shutdown(self) {
        for msu in self.msus {
            msu.shutdown();
        }
        self.coord.shutdown();
        let _ = std::fs::remove_dir_all(&self.data_dir);
    }
}
