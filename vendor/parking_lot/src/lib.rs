//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset of the parking_lot API this workspace uses —
//! a non-poisoning [`Mutex`], [`RwLock`], and a [`Condvar`] whose
//! `wait`/`wait_for` take the guard by `&mut` — on top of `std::sync`.
//! Poisoned std locks are recovered transparently, matching
//! parking_lot's "no poisoning" semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock that does not poison.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified; the guard is released while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

/// Whether a timed wait returned because the timeout elapsed.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait timed out rather than being notified.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out());
        }
        h.join().unwrap();
    }
}
